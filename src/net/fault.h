/**
 * @file
 * Deterministic per-link fault injection.
 *
 * The paper's §3.7 assumes the cluster never loses a cell; this module
 * deliberately breaks that assumption so the recovery machinery layered
 * above (wire sequencing/retransmission, RPC retry, DFS window degrade)
 * can be exercised and measured. A FaultInjector sits inside a Link's
 * transmit pump and, drawing from its own seeded PCG stream, may
 *
 *  - drop a cell in flight (the consumed credit still returns, as if
 *    the receiver had drained it — the loss is invisible to flow
 *    control, exactly like a cell dying in a switch fabric),
 *  - corrupt a payload bit (CRC-visible: AAL5 frames fail reassembly,
 *    reliability envelopes fail their inner checksum),
 *  - reorder (hold a cell a few cell-times so successors overtake it),
 *  - delay (add bounded extra propagation latency), or
 *  - pause delivery inside configured [from, until) windows, modelling
 *    a receiver that stalls and then resumes.
 *
 * Every decision is folded into the simulator's DeterminismDigest, so a
 * faulty run replays bit-identically under the same plan seed and the
 * race/mc/determinism gates keep working under loss. The injected-event
 * stream depends only on the injector's own PCG sequence and the order
 * cells reach the link, both of which are schedule-deterministic.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/cell.h"
#include "obs/metrics.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace remora::net {

/** What to inject, with what probability. All rates are per cell. */
struct FaultPlan
{
    /** Base seed; each injector folds its link name in, so the two
     *  directions of a wire draw independent streams. */
    uint64_t seed = 1;
    /** Probability a cell is dropped in flight. */
    double dropRate = 0.0;
    /** Probability one payload bit is flipped. */
    double corruptRate = 0.0;
    /** Probability a cell is held so later cells overtake it. */
    double reorderRate = 0.0;
    /** Probability a cell picks up extra delivery latency. */
    double delayRate = 0.0;
    /** Upper bound on the extra latency a delayed cell picks up. */
    sim::Duration maxDelay = sim::usec(50);

    /** Delivery blackout window: cells landing inside are deferred. */
    struct Pause
    {
        sim::Time from = 0;
        sim::Time until = 0;
    };
    std::vector<Pause> pauses;

    /** True when the plan can perturb anything at all. */
    bool
    enabled() const
    {
        return dropRate > 0.0 || corruptRate > 0.0 || reorderRate > 0.0 ||
               delayRate > 0.0 || !pauses.empty();
    }
};

/** Per-link fault source; installed via Link::setFaultInjector. */
class FaultInjector
{
  public:
    /** Fate of one cell. */
    enum class Action : uint8_t
    {
        kDeliver,
        kDrop,
    };

    /** Outcome of decide(): deliver (possibly late) or drop. */
    struct Decision
    {
        Action action = Action::kDeliver;
        sim::Duration extraDelay = 0;
    };

    /**
     * @param simulator Owning simulator (digest folding).
     * @param plan Rates and windows to apply.
     * @param linkName Name of the carrying link; folded into the seed.
     */
    FaultInjector(sim::Simulator &simulator, const FaultPlan &plan,
                  std::string linkName);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Decide the fate of @p cell. @p nominalArrival is when the cell
     * would reach the sink unperturbed (extraDelay adds to it, and the
     * pause windows compare against it). Corruption mutates the cell
     * payload in place. @p cellTime scales the reorder hold so "a few
     * cells overtake" holds at any bandwidth.
     */
    Decision decide(Cell &cell, sim::Time nominalArrival,
                    sim::Duration cellTime);

    /** Cells dropped in flight. */
    uint64_t drops() const { return drops_.value(); }

    /** Cells with a payload bit flipped. */
    uint64_t corrupts() const { return corrupts_.value(); }

    /** Cells held for overtake. */
    uint64_t reorders() const { return reorders_.value(); }

    /** Cells given extra latency. */
    uint64_t delays() const { return delays_.value(); }

    /** Cells deferred past a pause window. */
    uint64_t pausedDeliveries() const { return paused_.value(); }

    /** Cells examined. */
    uint64_t decisions() const { return decisions_; }

    /** Register "<prefix>.drops" etc. */
    void registerStats(obs::MetricRegistry &reg,
                       const std::string &prefix) const;

    /** The plan in force. */
    const FaultPlan &plan() const { return plan_; }

    /** Name of the link this injector perturbs. */
    const std::string &linkName() const { return linkName_; }

  private:
    sim::Simulator &sim_;
    FaultPlan plan_;
    std::string linkName_;
    uint64_t linkHash_;
    sim::Random rng_;
    uint64_t decisions_ = 0;
    sim::Counter drops_;
    sim::Counter corrupts_;
    sim::Counter reorders_;
    sim::Counter delays_;
    sim::Counter paused_;
};

} // namespace remora::net
