#include "net/fault.h"

#include <algorithm>

#include "util/hash.h"

namespace remora::net {

FaultInjector::FaultInjector(sim::Simulator &simulator, const FaultPlan &plan,
                             std::string linkName)
    : sim_(simulator), plan_(plan), linkName_(std::move(linkName)),
      linkHash_(util::fnv1a(linkName_)),
      rng_(plan.seed ^ util::mix64(linkHash_))
{}

FaultInjector::Decision
FaultInjector::decide(Cell &cell, sim::Time nominalArrival,
                      sim::Duration cellTime)
{
    Decision d;
    uint64_t ordinal = decisions_++;
    // The draw order below is fixed (drop, corrupt, reorder, delay) so
    // a plan's decision stream depends only on the cell sequence the
    // link carries, never on which faults actually fire.
    if (plan_.dropRate > 0.0 && rng_.bernoulli(plan_.dropRate)) {
        drops_.inc();
        sim_.noteDigest("fault.drop", linkHash_ ^ ordinal);
        d.action = Action::kDrop;
        return d;
    }
    if (plan_.corruptRate > 0.0 && rng_.bernoulli(plan_.corruptRate)) {
        size_t byte = rng_.uniformInt(Cell::kPayloadBytes);
        uint8_t bit = static_cast<uint8_t>(rng_.uniformInt(8));
        cell.payload[byte] ^= static_cast<uint8_t>(1u << bit);
        corrupts_.inc();
        sim_.noteDigest("fault.corrupt", linkHash_ ^ ordinal);
    }
    if (plan_.reorderRate > 0.0 && rng_.bernoulli(plan_.reorderRate)) {
        // Hold the cell 1..4 cell-times: cells transmitted behind it
        // land first, so the receiver observes genuine reordering.
        sim::Duration hold =
            static_cast<sim::Duration>(1 + rng_.uniformInt(4)) * cellTime;
        d.extraDelay += hold;
        reorders_.inc();
        sim_.noteDigest("fault.reorder", linkHash_ ^ ordinal);
    }
    if (plan_.delayRate > 0.0 && rng_.bernoulli(plan_.delayRate)) {
        d.extraDelay += static_cast<sim::Duration>(
            1 + rng_.uniformInt(static_cast<uint64_t>(
                    std::max<sim::Duration>(plan_.maxDelay, 1))));
        delays_.inc();
        sim_.noteDigest("fault.delay", linkHash_ ^ ordinal);
    }
    // A delivery landing inside a pause window slips to the window end
    // (plus whatever delay it already accrued): the receiver is stalled
    // and drains everything held for it when it resumes.
    sim::Time arrival = nominalArrival + d.extraDelay;
    for (const FaultPlan::Pause &p : plan_.pauses) {
        if (arrival >= p.from && arrival < p.until) {
            d.extraDelay += p.until - arrival;
            arrival = p.until;
            paused_.inc();
            sim_.noteDigest("fault.pause", linkHash_ ^ ordinal);
        }
    }
    return d;
}

void
FaultInjector::registerStats(obs::MetricRegistry &reg,
                             const std::string &prefix) const
{
    reg.add(prefix + ".drops", drops_);
    reg.add(prefix + ".corrupts", corrupts_);
    reg.add(prefix + ".reorders", reorders_);
    reg.add(prefix + ".delays", delays_);
    reg.add(prefix + ".paused", paused_);
}

} // namespace remora::net
