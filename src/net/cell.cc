#include "net/cell.h"

#include <algorithm>

#include "util/crc.h"

namespace remora::net {

void
Cell::encode(std::span<uint8_t, kCellBytes> out) const
{
    // UNI format: GFC(4) | VPI(8) | VCI(16) | PTI(3) | CLP(1) | HEC(8).
    // We use the GFC nibble as VPI bits 11..8 to fit 12-bit node ids.
    out[0] = static_cast<uint8_t>(((vpi >> 8) & 0x0f) << 4 |
                                  ((vpi >> 4) & 0x0f));
    out[1] = static_cast<uint8_t>((vpi & 0x0f) << 4 | ((vci >> 12) & 0x0f));
    out[2] = static_cast<uint8_t>((vci >> 4) & 0xff);
    out[3] = static_cast<uint8_t>((vci & 0x0f) << 4 | ((pti & 0x7) << 1) |
                                  (clp ? 1 : 0));
    out[4] = util::crc8Hec(std::span<const uint8_t>(out.data(), 4));
    std::copy(payload.begin(), payload.end(), out.begin() + kHeaderBytes);
}

util::Result<Cell>
Cell::decode(std::span<const uint8_t, kCellBytes> in)
{
    uint8_t hec = util::crc8Hec(std::span<const uint8_t>(in.data(), 4));
    if (hec != in[4]) {
        return util::Status(util::ErrorCode::kMalformed, "HEC mismatch");
    }
    Cell c;
    c.vpi = static_cast<uint16_t>(((in[0] >> 4) & 0x0f) << 8 |
                                  (in[0] & 0x0f) << 4 | (in[1] >> 4));
    c.vci = static_cast<uint16_t>((in[1] & 0x0f) << 12 | in[2] << 4 |
                                  (in[3] >> 4));
    c.pti = static_cast<uint8_t>((in[3] >> 1) & 0x7);
    c.clp = (in[3] & 0x1) != 0;
    std::copy(in.begin() + kHeaderBytes, in.end(), c.payload.begin());
    return c;
}

} // namespace remora::net
