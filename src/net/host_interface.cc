#include "net/host_interface.h"

#include "obs/trace.h"
#include "util/panic.h"

namespace remora::net {

namespace {

/** Node scope for traces: "nodeA.nic" belongs to node "nodeA". */
std::string_view
nodeOf(const std::string &nicName)
{
    size_t dot = nicName.find('.');
    return std::string_view(nicName).substr(
        0, dot == std::string::npos ? nicName.size() : dot);
}

} // namespace

HostInterface::HostInterface(sim::Simulator &simulator,
                             const HostInterfaceParams &params,
                             std::string name)
    : sim_(simulator), params_(params), name_(std::move(name))
{
    REMORA_ASSERT(params.txFifoCells > 0);
    REMORA_ASSERT(params.rxFifoCells > 0);
}

void
HostInterface::attachTxLink(Link &link)
{
    REMORA_ASSERT(txLink_ == nullptr);
    txLink_ = &link;
}

void
HostInterface::setRxInterrupt(std::function<void()> handler)
{
    rxInterrupt_ = std::move(handler);
}

bool
HostInterface::txSpace(size_t cells) const
{
    return txFifo_.size() + cells <= params_.txFifoCells;
}

void
HostInterface::pushTx(const Cell &cell)
{
    REMORA_ASSERT(txSpace(1));
    txFifo_.push_back(cell);
    drainTx();
}

void
HostInterface::drainTx()
{
    REMORA_ASSERT(txLink_ != nullptr);
    // The adapter moves cells from FIFO to wire as fast as the link's
    // own serialization/credit logic accepts them; Link::send queues
    // internally, so the TX FIFO never backs up in this model. The FIFO
    // bound still applies to the host-facing side via txSpace().
    while (!txFifo_.empty()) {
        txLink_->send(txFifo_.front());
        txFifo_.pop_front();
        cellsTx_.inc();
    }
}

void
HostInterface::acceptCell(const Cell &cell)
{
    if (rxFifo_.size() >= params_.rxFifoCells) {
        // Credit flow control should make this unreachable; a drop here
        // is "catastrophic" per the paper's reliability assumption.
        REMORA_PANIC("RX FIFO overflow on " + name_ +
                     " (credit misconfiguration)");
    }
    rxFifo_.push_back(cell);
    cellsRx_.inc();
    sim_.noteDigest("net.rx",
                    static_cast<uint64_t>(cell.vpi) << 16 | cell.vci);
    if (cell.traceOp != 0 && cell.lastOfFrame() && obs::TraceRecorder::on()) {
        // Arrival anchor for the critical-path analyzer: this is the
        // moment the op's frame has fully crossed the wire; everything
        // between here and the drain span is controller + queueing.
        obs::TraceRecorder::instance().instantFor(
            cell.traceOp, nodeOf(name_), "net",
            obs::kCellArrivalEvent,
            "src=" + std::to_string(cell.vci));
    }
    if (!interruptPending_ && rxInterrupt_) {
        interruptPending_ = true;
        sim_.schedule(params_.interruptLatency, [this] {
            interruptPending_ = false;
            if (obs::TraceRecorder::on()) {
                obs::TraceRecorder::instance().instant(
                    nodeOf(name_), "net", "rx_irq",
                    "fifo=" + std::to_string(rxFifo_.size()));
            }
            if (rxInterrupt_) {
                rxInterrupt_();
            }
        });
    }
}

void
HostInterface::registerStats(obs::MetricRegistry &reg,
                             const std::string &prefix) const
{
    reg.add(prefix + ".cells_tx", cellsTx_);
    reg.add(prefix + ".cells_rx", cellsRx_);
    reg.addGauge(prefix + ".rx_depth",
                 [this] { return static_cast<double>(rxFifo_.size()); });
    reg.addGauge(prefix + ".tx_depth",
                 [this] { return static_cast<double>(txFifo_.size()); });
}

std::optional<Cell>
HostInterface::popRx()
{
    if (rxFifo_.empty()) {
        return std::nullopt;
    }
    Cell c = rxFifo_.front();
    rxFifo_.pop_front();
    if (upstream_ != nullptr) {
        upstream_->returnCredit();
    }
    return c;
}

} // namespace remora::net
