#include "net/link.h"

#include <algorithm>

#include "net/fault.h"
#include "util/panic.h"

namespace remora::net {

Link::Link(sim::Simulator &simulator, const LinkParams &params,
           std::string name)
    : sim_(simulator), params_(params), name_(std::move(name)),
      credits_(params.credits)
{
    REMORA_ASSERT(params.bandwidthMbps > 0.0);
    REMORA_ASSERT(params.credits > 0);
    double bitsPerCell = Cell::kCellBytes * 8.0;
    double secs = bitsPerCell / (params.bandwidthMbps * 1e6);
    cellTime_ = static_cast<sim::Duration>(secs * 1e9 + 0.5);
}

void
Link::connect(CellSink &sink)
{
    REMORA_ASSERT(sink_ == nullptr);
    sink_ = &sink;
    sink.attachUpstream(this);
}

void
Link::send(const Cell &cell)
{
    REMORA_ASSERT(sink_ != nullptr);
    queue_.push_back(cell);
    maxQueue_ = std::max(maxQueue_, queue_.size());
    pump();
}

void
Link::returnCredit(size_t n)
{
    // The credit indication travels back along the wire.
    sim_.schedule(params_.propagation, [this, n] {
        credits_ += n;
        pump();
    });
}

void
Link::registerStats(obs::MetricRegistry &reg, const std::string &prefix) const
{
    reg.add(prefix + ".cells_sent", cellsSent_);
    reg.addGauge(prefix + ".queue_depth",
                 [this] { return static_cast<double>(queue_.size()); });
    reg.addGauge(prefix + ".max_queue_depth",
                 [this] { return static_cast<double>(maxQueue_); });
}

void
Link::pump()
{
    if (pumpScheduled_) {
        return;
    }
    while (!queue_.empty() && credits_ > 0) {
        sim::Time now = sim_.now();
        if (wireFreeAt_ > now) {
            // Wire busy: try again when it frees up.
            pumpScheduled_ = true;
            sim_.scheduleAt(wireFreeAt_, [this] {
                pumpScheduled_ = false;
                pump();
            });
            return;
        }
        Cell cell = queue_.front();
        queue_.pop_front();
        --credits_;
        wireFreeAt_ = now + cellTime_;
        cellsSent_.inc();
        // The cell is fully received one serialization + propagation
        // after transmission starts.
        sim::Time deliverAt = wireFreeAt_ + params_.propagation;
        if (faults_ != nullptr) {
            FaultInjector::Decision d =
                faults_->decide(cell, deliverAt, cellTime_);
            if (d.action == FaultInjector::Action::kDrop) {
                // The cell dies in flight. Its credit still comes back
                // after a propagation delay, as if the receiver had
                // drained it — flow control cannot see the loss.
                returnCredit();
                continue;
            }
            deliverAt += d.extraDelay;
        }
        sim_.scheduleAt(deliverAt,
                        [this, cell] { sink_->acceptCell(cell); });
    }
}

} // namespace remora::net
