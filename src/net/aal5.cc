#include "net/aal5.h"

#include <algorithm>
#include <cstring>

#include "util/bytes.h"
#include "util/crc.h"
#include "util/panic.h"

namespace remora::net {

std::vector<Cell>
aal5Segment(uint16_t vpi, uint16_t vci, std::span<const uint8_t> frame)
{
    REMORA_ASSERT(frame.size() <= kMaxFrameBytes);

    // Build the CS-PDU: payload | pad | UU CPI LEN(2) CRC32(4).
    size_t pduNoPad = frame.size() + 8;
    size_t cells = (pduNoPad + Cell::kPayloadBytes - 1) / Cell::kPayloadBytes;
    size_t pduBytes = cells * Cell::kPayloadBytes;
    size_t padBytes = pduBytes - pduNoPad;

    util::ByteWriter w(pduBytes);
    w.putBytes(frame);
    w.putZeros(padBytes);
    w.putU8(0);                                        // CPCS-UU
    w.putU8(0);                                        // CPI
    w.putU16(static_cast<uint16_t>(frame.size()));     // length
    // CRC over everything before the CRC field itself.
    uint32_t crc = util::crc32Ieee(w.bytes());
    w.putU32(crc);

    std::vector<uint8_t> pdu = w.take();
    REMORA_ASSERT(pdu.size() == pduBytes);

    std::vector<Cell> out;
    out.reserve(cells);
    for (size_t i = 0; i < cells; ++i) {
        Cell c;
        c.vpi = vpi;
        c.vci = vci;
        std::memcpy(c.payload.data(), pdu.data() + i * Cell::kPayloadBytes,
                    Cell::kPayloadBytes);
        c.setLastOfFrame(i + 1 == cells);
        out.push_back(c);
    }
    return out;
}

std::optional<Aal5Reassembler::Frame>
Aal5Reassembler::feed(const Cell &cell)
{
    auto &buf = partial_[cell.vci];
    buf.insert(buf.end(), cell.payload.begin(), cell.payload.end());
    if (!cell.lastOfFrame()) {
        return std::nullopt;
    }

    std::vector<uint8_t> pdu = std::move(buf);
    partial_.erase(cell.vci);

    if (pdu.size() < 8) {
        crcErrors_.inc();
        return std::nullopt;
    }
    util::ByteReader trailer(
        std::span<const uint8_t>(pdu.data() + pdu.size() - 8, 8));
    trailer.skip(2); // UU, CPI
    uint16_t length = trailer.getU16();
    uint32_t wireCrc = trailer.getU32();

    uint32_t calcCrc = util::crc32Ieee(
        std::span<const uint8_t>(pdu.data(), pdu.size() - 4));
    if (calcCrc != wireCrc) {
        crcErrors_.inc();
        return resync(cell, pdu, length);
    }
    if (length + 8ul > pdu.size()) {
        // CRC verified over these exact bytes, so the wire is innocent:
        // the sender wrote a LEN that does not fit its own CS-PDU.
        lengthErrors_.inc();
        return std::nullopt;
    }

    framesOk_.inc();
    Frame f;
    f.srcVci = cell.vci;
    f.traceOp = cell.traceOp;
    f.payload.assign(pdu.begin(), pdu.begin() + length);
    return f;
}

std::optional<Aal5Reassembler::Frame>
Aal5Reassembler::resync(const Cell &cell, const std::vector<uint8_t> &pdu,
                        uint16_t length)
{
    // If the CRC failure is two glued frames (frame N lost its end-flag
    // cell, so frame N+1 accumulated behind it), the trailer we just
    // read belongs to frame N+1 and its LEN names the tail exactly:
    // the last aal5CellCount(LEN) cells of the glue are frame N+1's
    // CS-PDU, whose own CRC must verify for the recovery to be real.
    size_t candidateBytes = aal5CellCount(length) * Cell::kPayloadBytes;
    if (candidateBytes >= pdu.size()) {
        return std::nullopt; // nothing shorter to resync onto
    }
    auto candidate = std::span<const uint8_t>(
        pdu.data() + pdu.size() - candidateBytes, candidateBytes);
    util::ByteReader candTrailer(candidate.subspan(candidateBytes - 4, 4));
    uint32_t candWireCrc = candTrailer.getU32();
    uint32_t candCalcCrc =
        util::crc32Ieee(candidate.subspan(0, candidateBytes - 4));
    if (candCalcCrc != candWireCrc) {
        return std::nullopt; // genuine corruption, not a glue
    }
    framesResynced_.inc();
    framesOk_.inc();
    Frame f;
    f.srcVci = cell.vci;
    f.traceOp = cell.traceOp;
    f.payload.assign(candidate.begin(), candidate.begin() + length);
    return f;
}

void
Aal5Reassembler::registerStats(obs::MetricRegistry &reg,
                               const std::string &prefix) const
{
    reg.add(prefix + ".crc_errors", crcErrors_);
    reg.add(prefix + ".length_errors", lengthErrors_);
    reg.add(prefix + ".frames_ok", framesOk_);
    reg.add(prefix + ".frames_resynced", framesResynced_);
}

} // namespace remora::net
