/**
 * @file
 * AAL5 segmentation and reassembly.
 *
 * Frames (CS-PDUs) are carried as a run of cells on one (vpi, vci) pair;
 * the last cell is flagged in its PTI. The CS-PDU is the frame payload,
 * zero padding, and an 8-octet trailer (UU, CPI, 16-bit length, CRC-32)
 * aligned so the total is a multiple of 48. Reassembly verifies both the
 * length field and the CRC; a failure is counted and the frame dropped
 * (the paper treats loss in the cluster as catastrophic, so users of the
 * reassembler panic on it by default).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/cell.h"
#include "sim/stats.h"

namespace remora::net {

/** Maximum frame payload AAL5 can carry (16-bit length field). */
inline constexpr size_t kMaxFrameBytes = 65535;

/**
 * Split @p frame into AAL5 cells addressed dst=@p vpi, src=@p vci.
 *
 * @param vpi Destination node id placed in every cell.
 * @param vci Source node id placed in every cell.
 * @param frame Frame payload, at most kMaxFrameBytes.
 * @return Cells in transmission order; last one has the end flag.
 */
std::vector<Cell> aal5Segment(uint16_t vpi, uint16_t vci,
                              std::span<const uint8_t> frame);

/** Number of cells a frame of @p payloadBytes occupies on the wire. */
constexpr size_t
aal5CellCount(size_t payloadBytes)
{
    return (payloadBytes + 8 + Cell::kPayloadBytes - 1) / Cell::kPayloadBytes;
}

/**
 * Per-source AAL5 reassembler.
 *
 * Feed cells as they drain from the RX FIFO; when an end-of-frame cell
 * completes a valid CS-PDU the frame payload is returned. Cells from
 * different sources (VCIs) reassemble independently.
 */
class Aal5Reassembler
{
  public:
    /** A completed frame and the source it came from. */
    struct Frame
    {
        uint16_t srcVci;
        /** Trace op carried by the frame's final cell (0 = untraced). */
        uint64_t traceOp = 0;
        std::vector<uint8_t> payload;
    };

    /**
     * Absorb one cell.
     *
     * @return A completed frame if @p cell finished one, otherwise
     *         nullopt (mid-frame cell, or a corrupt frame that was
     *         dropped and counted).
     */
    std::optional<Frame> feed(const Cell &cell);

    /** Frames dropped due to CRC or length mismatch. */
    uint64_t crcErrors() const { return crcErrors_.value(); }

    /** Frames successfully reassembled. */
    uint64_t framesOk() const { return framesOk_.value(); }

  private:
    std::unordered_map<uint16_t, std::vector<uint8_t>> partial_;
    sim::Counter crcErrors_;
    sim::Counter framesOk_;
};

} // namespace remora::net
