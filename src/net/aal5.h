/**
 * @file
 * AAL5 segmentation and reassembly.
 *
 * Frames (CS-PDUs) are carried as a run of cells on one (vpi, vci) pair;
 * the last cell is flagged in its PTI. The CS-PDU is the frame payload,
 * zero padding, and an 8-octet trailer (UU, CPI, 16-bit length, CRC-32)
 * aligned so the total is a multiple of 48. Reassembly verifies the CRC
 * first (wire damage) and then the length field (peer framing bug); each
 * failure is counted separately and the frame dropped. When a CRC
 * failure is really two frames glued together by a lost cell — the end
 * flag of frame N never arrived, so frame N+1's cells piled onto N's
 * partial buffer — feed() resynchronizes on the tail: the glued PDU's
 * trailer belongs to frame N+1, so its LEN field locates a candidate
 * tail PDU whose own CRC proves the recovery. Frame N stays lost (the
 * recovery layers above retransmit it); frame N+1 is delivered instead
 * of being poisoned.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/cell.h"
#include "obs/metrics.h"
#include "sim/stats.h"

namespace remora::net {

/** Maximum frame payload AAL5 can carry (16-bit length field). */
inline constexpr size_t kMaxFrameBytes = 65535;

/**
 * Split @p frame into AAL5 cells addressed dst=@p vpi, src=@p vci.
 *
 * @param vpi Destination node id placed in every cell.
 * @param vci Source node id placed in every cell.
 * @param frame Frame payload, at most kMaxFrameBytes.
 * @return Cells in transmission order; last one has the end flag.
 */
std::vector<Cell> aal5Segment(uint16_t vpi, uint16_t vci,
                              std::span<const uint8_t> frame);

/** Number of cells a frame of @p payloadBytes occupies on the wire. */
constexpr size_t
aal5CellCount(size_t payloadBytes)
{
    return (payloadBytes + 8 + Cell::kPayloadBytes - 1) / Cell::kPayloadBytes;
}

/**
 * Per-source AAL5 reassembler.
 *
 * Feed cells as they drain from the RX FIFO; when an end-of-frame cell
 * completes a valid CS-PDU the frame payload is returned. Cells from
 * different sources (VCIs) reassemble independently.
 */
class Aal5Reassembler
{
  public:
    /** A completed frame and the source it came from. */
    struct Frame
    {
        uint16_t srcVci;
        /** Trace op carried by the frame's final cell (0 = untraced). */
        uint64_t traceOp = 0;
        std::vector<uint8_t> payload;
    };

    /**
     * Absorb one cell.
     *
     * @return A completed frame if @p cell finished one, otherwise
     *         nullopt (mid-frame cell, or a corrupt frame that was
     *         dropped and counted).
     */
    std::optional<Frame> feed(const Cell &cell);

    /** Frames dropped because the CRC-32 check failed. */
    uint64_t crcErrors() const { return crcErrors_.value(); }

    /**
     * Frames whose CRC verified but whose LEN field did not fit the
     * CS-PDU. Distinct from crcErrors(): a length mismatch with a good
     * CRC is a peer framing bug, not wire damage.
     */
    uint64_t lengthErrors() const { return lengthErrors_.value(); }

    /** Frames successfully reassembled. */
    uint64_t framesOk() const { return framesOk_.value(); }

    /**
     * Times a CRC failure turned out to be two frames glued by a lost
     * cell and the tail frame was recovered intact (see feed()).
     */
    uint64_t framesResynced() const { return framesResynced_.value(); }

    /** Register "<prefix>.crc_errors" etc. */
    void registerStats(obs::MetricRegistry &reg,
                       const std::string &prefix) const;

  private:
    /** Attempt tail recovery of a glued PDU after a CRC failure. */
    std::optional<Frame> resync(const Cell &cell,
                                const std::vector<uint8_t> &pdu,
                                uint16_t length);

    std::unordered_map<uint16_t, std::vector<uint8_t>> partial_;
    sim::Counter crcErrors_;
    sim::Counter lengthErrors_;
    sim::Counter framesOk_;
    sim::Counter framesResynced_;
};

} // namespace remora::net
