/**
 * @file
 * Host-network interface modeled on the FORE TCA-100.
 *
 * The TCA-100 sat on the TURBOChannel with *no DMA*: it exposed two cell
 * FIFOs, one toward the network and one from it, and the host CPU moved
 * every word with programmed I/O. remora reproduces that structure:
 *
 *  - pushTx() appends a host-built cell to the TX FIFO; the interface
 *    drains it onto the outgoing Link at wire speed.
 *  - Received cells land in the bounded RX FIFO; the first cell into an
 *    empty FIFO raises the RX interrupt (after a latency), and the
 *    kernel drains with popRx(), which releases a link credit.
 *
 * The CPU cost of the PIO transfers is charged by the *caller* (the
 * kernel emulation layer), because that is where the paper's costs live;
 * the interface itself only models buffering, ordering, and interrupts.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "net/cell.h"
#include "net/link.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace remora::net {

/** FIFO capacities and timing of a host interface. */
struct HostInterfaceParams
{
    /** TX FIFO capacity in cells. */
    size_t txFifoCells = 292;
    /** RX FIFO capacity in cells (bounds the link credit). */
    size_t rxFifoCells = 292;
    /** Delay from first cell in empty RX FIFO to interrupt delivery. */
    sim::Duration interruptLatency = sim::usec(2);
};

/** The node's network adapter: bounded FIFOs, PIO access, RX interrupt. */
class HostInterface : public CellSink
{
  public:
    /**
     * @param simulator Owning simulator.
     * @param params FIFO sizes and interrupt latency.
     * @param name Diagnostic name, e.g. "nodeA.nic".
     */
    HostInterface(sim::Simulator &simulator,
                  const HostInterfaceParams &params, std::string name);

    /** Attach the outgoing link (toward switch or peer). */
    void attachTxLink(Link &link);

    /**
     * Install the RX interrupt handler (the kernel's receive path).
     * Raised once per empty→non-empty FIFO transition.
     */
    void setRxInterrupt(std::function<void()> handler);

    /** True when the TX FIFO can take @p cells more cells. */
    bool txSpace(size_t cells = 1) const;

    /**
     * Host pushes one cell into the TX FIFO (PIO cost charged by the
     * caller). The caller must have checked txSpace().
     */
    void pushTx(const Cell &cell);

    /**
     * Host drains one cell from the RX FIFO (PIO cost charged by the
     * caller); returns a credit to the upstream link.
     *
     * @return The cell, or nullopt when the FIFO is empty.
     */
    std::optional<Cell> popRx();

    /** Cells currently waiting in the RX FIFO. */
    size_t rxDepth() const { return rxFifo_.size(); }

    /** Cells currently waiting in the TX FIFO. */
    size_t txDepth() const { return txFifo_.size(); }

    /** RX FIFO capacity (upper bound for the incoming link's credits). */
    size_t rxCapacity() const { return params_.rxFifoCells; }

    /** Total cells transmitted. */
    uint64_t cellsTx() const { return cellsTx_.value(); }

    /** Total cells received. */
    uint64_t cellsRx() const { return cellsRx_.value(); }

    /** The attached outgoing link; nullptr before attachTxLink(). */
    Link *txLink() const { return txLink_; }

    /** Delay from first RX cell to interrupt delivery. */
    sim::Duration interruptLatency() const { return params_.interruptLatency; }

    /**
     * Register this adapter's counters and FIFO-depth gauges under
     * "<prefix>.cells_tx" etc.
     */
    void registerStats(obs::MetricRegistry &reg,
                       const std::string &prefix) const;

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

    // CellSink: network side delivers into the RX FIFO.
    void acceptCell(const Cell &cell) override;

  private:
    /** Move TX FIFO cells onto the link. */
    void drainTx();

    sim::Simulator &sim_;
    HostInterfaceParams params_;
    std::string name_;
    Link *txLink_ = nullptr;
    std::function<void()> rxInterrupt_;
    std::deque<Cell> txFifo_;
    std::deque<Cell> rxFifo_;
    bool interruptPending_ = false;
    sim::Counter cellsTx_;
    sim::Counter cellsRx_;
};

} // namespace remora::net
