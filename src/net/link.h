/**
 * @file
 * Unidirectional, credit-flow-controlled point-to-point link.
 *
 * The paper's design assumptions (§3) rely on "hardware flow-control ...
 * that can guarantee that data packets are delivered reliably"; a cell
 * drop inside the cluster is treated as catastrophic. The Link therefore
 * never drops: cells queue at the sender until the receiver has both
 * wire time and buffer credit for them.
 *
 *  - Transmission is serialized at the configured bandwidth (one cell
 *    occupies the wire for 53*8/bandwidth seconds).
 *  - Each cell consumes one credit; the receiver returns credits as it
 *    drains its bounded FIFO, and the credit signal takes a propagation
 *    delay to travel back.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "net/cell.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace remora::net {

class FaultInjector;
class Link;

/** Receiving endpoint of a Link. */
class CellSink
{
  public:
    virtual ~CellSink() = default;

    /**
     * Deliver one cell. The link guarantees it held a credit, so the
     * sink must have buffer space.
     */
    virtual void acceptCell(const Cell &cell) = 0;

    /** Called by Link::connect so the sink can return credits. */
    void attachUpstream(Link *link) { upstream_ = link; }

  protected:
    /** The link feeding this sink; used for credit returns. */
    Link *upstream_ = nullptr;
};

/** Physical parameters of a link. */
struct LinkParams
{
    /** Wire bandwidth in megabits per second (FORE testbed: 140). */
    double bandwidthMbps = 140.0;
    /** One-way propagation delay. */
    sim::Duration propagation = sim::usec(1);
    /**
     * Receiver buffer credit (cells in flight + buffered). Must not
     * exceed the receiving FIFO's capacity.
     */
    size_t credits = 64;
};

/** One direction of a wire between two devices. */
class Link
{
  public:
    /**
     * @param simulator Owning simulator.
     * @param params Physical parameters.
     * @param name Diagnostic name, e.g. "client->server".
     */
    Link(sim::Simulator &simulator, const LinkParams &params,
         std::string name);

    Link(const Link &) = delete;
    Link &operator=(const Link &) = delete;

    /** Attach the receiving endpoint; must happen before any send. */
    void connect(CellSink &sink);

    /**
     * Queue one cell for transmission. Never drops; the cell waits for
     * wire availability and receiver credit.
     */
    void send(const Cell &cell);

    /**
     * Return @p n credits from the receiver side (it drained cells from
     * its buffer). The credit takes one propagation delay to reach the
     * sender.
     */
    void returnCredit(size_t n = 1);

    /** Wire time for one cell at this link's bandwidth. */
    sim::Duration cellTime() const { return cellTime_; }

    /** One-way propagation delay. */
    sim::Duration propagation() const { return params_.propagation; }

    /** Cells transmitted since construction. */
    uint64_t cellsSent() const { return cellsSent_.value(); }

    /** Largest sender-side queue depth observed. */
    size_t maxQueueDepth() const { return maxQueue_; }

    /** Cells currently waiting for wire or credit. */
    size_t queueDepth() const { return queue_.size(); }

    /**
     * Register cell/queue metrics under "<prefix>.cells_sent" etc.
     */
    void registerStats(obs::MetricRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Install (or clear, with nullptr) a fault injector consulted for
     * every cell leaving the wire. The link does not own it. With an
     * injector installed the "never drops" guarantee above no longer
     * holds — recovery belongs to the layers on top.
     */
    void setFaultInjector(FaultInjector *injector) { faults_ = injector; }

    /** The installed fault injector, if any. */
    FaultInjector *faultInjector() const { return faults_; }

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

  private:
    /** Transmit queued cells while wire and credit allow. */
    void pump();

    sim::Simulator &sim_;
    LinkParams params_;
    std::string name_;
    CellSink *sink_ = nullptr;
    FaultInjector *faults_ = nullptr;
    sim::Duration cellTime_;
    std::deque<Cell> queue_;
    size_t credits_;
    sim::Time wireFreeAt_ = 0;
    bool pumpScheduled_ = false;
    sim::Counter cellsSent_;
    size_t maxQueue_ = 0;
};

} // namespace remora::net
