#include "net/switch.h"

#include "obs/trace.h"
#include "util/panic.h"

namespace remora::net {

Switch::Switch(sim::Simulator &simulator, sim::Duration fabricLatency,
               std::string name)
    : sim_(simulator), fabricLatency_(fabricLatency), name_(std::move(name))
{}

size_t
Switch::addPort(Link &outputLink)
{
    auto port = std::make_unique<PortState>();
    port->output = &outputLink;
    port->input.parent = this;
    port->input.port = port.get();
    ports_.push_back(std::move(port));
    return ports_.size() - 1;
}

CellSink &
Switch::inputSink(size_t port)
{
    REMORA_ASSERT(port < ports_.size());
    return ports_[port]->input;
}

void
Switch::route(NodeId dst, size_t port)
{
    REMORA_ASSERT(port < ports_.size());
    routes_[dst] = port;
}

void
Switch::InSink::acceptCell(const Cell &cell)
{
    // Input buffering is released immediately: return the credit to the
    // upstream link and push the cell through the fabric.
    if (upstream_ != nullptr) {
        upstream_->returnCredit();
    }
    parent->forward(cell, *port);
}

void
Switch::forward(const Cell &cell, PortState &from)
{
    (void)from;
    auto it = routes_.find(cell.vpi);
    if (it == routes_.end()) {
        routeMisses_.inc();
        REMORA_PANIC("switch " + name_ + ": no route for node " +
                     std::to_string(cell.vpi));
    }
    Link *out = ports_[it->second]->output;
    forwarded_.inc();
    if (obs::TraceRecorder::on()) {
        obs::TraceRecorder::instance().instant(
            name_, "net", "hop",
            "dst=" + std::to_string(cell.vpi) +
                " src=" + std::to_string(cell.vci));
    }
    sim_.schedule(fabricLatency_, [out, cell] { out->send(cell); });
}

void
Switch::registerStats(obs::MetricRegistry &reg,
                      const std::string &prefix) const
{
    reg.add(prefix + ".cells_forwarded", forwarded_);
    reg.add(prefix + ".route_misses", routeMisses_);
}

} // namespace remora::net
