/**
 * @file
 * Cluster topology builder.
 *
 * Owns the links (and optional switch) that connect a set of
 * HostInterfaces, mirroring the two configurations the paper uses:
 *
 *  - wireDirect(): two hosts back to back, the paper's switchless
 *    measurement testbed;
 *  - wireSwitched(): every host on one output-queued switch, the
 *    cluster configuration the design targets.
 *
 * Addressing convention: every host gets a NodeId; senders place the
 * destination id in cell.vpi and their own id in cell.vci.
 */
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/fault.h"
#include "net/host_interface.h"
#include "net/link.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace remora::net {

/** Builder/owner of the physical network between host interfaces. */
class Network
{
  public:
    /**
     * @param simulator Owning simulator.
     * @param linkParams Parameters applied to every link built.
     */
    Network(sim::Simulator &simulator, const LinkParams &linkParams);

    /**
     * Register @p hif as node @p id. Ids must be unique and assigned
     * before wiring.
     */
    void addHost(NodeId id, HostInterface &hif);

    /**
     * Connect exactly two registered hosts back to back (one link each
     * way). Requires exactly two hosts.
     */
    void wireDirect();

    /**
     * Connect all registered hosts through one switch.
     *
     * @param fabricLatency Per-cell switch forwarding latency.
     */
    void wireSwitched(sim::Duration fabricLatency = sim::usec(2));

    /** The switch, when wired switched; nullptr otherwise. */
    Switch *fabric() { return switch_.get(); }

    /** All links, for stats inspection. */
    const std::vector<std::unique_ptr<Link>> &links() const { return links_; }

    /**
     * Install one FaultInjector per existing link, each seeded from
     * @p plan.seed folded with the link's name so the two directions of
     * a wire draw independent streams. Call after wiring; calling again
     * replaces the previous injectors.
     */
    void installFaults(const FaultPlan &plan);

    /** Installed injectors (empty until installFaults). */
    const std::vector<std::unique_ptr<FaultInjector>> &
    faultInjectors() const
    {
        return injectors_;
    }

    /** Sum of cells dropped across every installed injector. */
    uint64_t totalFaultDrops() const;

    /** Number of registered hosts. */
    size_t hostCount() const { return hosts_.size(); }

  private:
    /** Build a link with credits clamped to @p sink capacity. */
    Link &makeLink(const std::string &name, size_t sinkCapacity);

    sim::Simulator &sim_;
    LinkParams linkParams_;
    std::vector<std::pair<NodeId, HostInterface *>> hosts_;
    std::unordered_map<NodeId, HostInterface *> byId_;
    std::vector<std::unique_ptr<Link>> links_;
    std::vector<std::unique_ptr<FaultInjector>> injectors_;
    std::unique_ptr<Switch> switch_;
    bool wired_ = false;
};

} // namespace remora::net
