/**
 * @file
 * The ATM cell: the unit of transmission on every remora wire.
 *
 * A cell is 53 octets: a 5-octet header (VPI, VCI, PTI, CLP, HEC) and a
 * 48-octet payload. remora uses the header fields the way the FORE
 * testbed's driver did:
 *
 *  - VPI carries the *destination* node id (the switch routes on it),
 *  - VCI carries the *source* node id (receivers demultiplex AAL5
 *    reassembly per source),
 *  - PTI bit 0 is the AAL5 "end of CS-PDU" marker,
 *  - HEC is a real CRC-8 over the first four header octets (ITU-T I.432
 *    polynomial with coset 0x55), verified on decode.
 */
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/status.h"

namespace remora::net {

/** Cluster-unique node address (assigned by the Network builder). */
using NodeId = uint16_t;

/** One 53-octet ATM cell. */
struct Cell
{
    /** Octets of header on the wire. */
    static constexpr size_t kHeaderBytes = 5;
    /** Octets of payload in every cell. */
    static constexpr size_t kPayloadBytes = 48;
    /** Total octets on the wire. */
    static constexpr size_t kCellBytes = kHeaderBytes + kPayloadBytes;

    /** Destination node id (routing key). 12 usable bits. */
    uint16_t vpi = 0;
    /** Source node id (reassembly demux key). 16 bits. */
    uint16_t vci = 0;
    /** Payload type indicator; bit 0 set marks the last cell of a frame. */
    uint8_t pti = 0;
    /** Cell loss priority (unused by remora; kept for format fidelity). */
    bool clp = false;
    /**
     * Trace correlation id riding alongside the cell (0 = untraced).
     * Models the op tag a real adapter would carry in a proprietary
     * header extension; it is NOT part of the 53 wire octets (encode()
     * ignores it, decode() leaves it 0) so the calibrated single-cell
     * size properties are untouched. Cells travel by value through the
     * FIFOs, links, and switch, so the tag survives end to end.
     */
    uint64_t traceOp = 0;
    /** Payload octets. */
    std::array<uint8_t, kPayloadBytes> payload{};

    /** True when this cell terminates an AAL5 frame. */
    bool lastOfFrame() const { return (pti & 0x1) != 0; }

    /** Mark / clear the AAL5 end-of-frame indication. */
    void
    setLastOfFrame(bool last)
    {
        pti = last ? (pti | 0x1) : (pti & ~0x1);
    }

    /**
     * Serialize to 53 wire octets, computing the HEC.
     *
     * @param out Destination buffer of exactly kCellBytes.
     */
    void encode(std::span<uint8_t, kCellBytes> out) const;

    /**
     * Parse 53 wire octets, verifying the HEC.
     *
     * @param in Source buffer of exactly kCellBytes.
     * @return The cell, or kMalformed if the HEC does not verify.
     */
    static util::Result<Cell> decode(std::span<const uint8_t, kCellBytes> in);
};

} // namespace remora::net
