#include "obs/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "util/json.h"

namespace remora::obs {

namespace {

/** A span clipped to [begin, end) on one node. */
struct SpanRange
{
    sim::Time begin;
    sim::Time end;
    std::string node;
};

/** A frame-arrival anchor. */
struct Arrival
{
    sim::Time ts;
    std::string node;
};

/** Everything recorded against one async op. */
struct OpEvents
{
    bool begun = false;
    bool ended = false;
    uint64_t parent = 0;
    sim::Time begin = 0;
    sim::Time end = 0;
    std::string name;
    std::string initiator;
    std::vector<SpanRange> spans;
    std::vector<Arrival> arrivals;
};

} // namespace

const char *
pathPhaseName(PathPhase phase)
{
    switch (phase) {
      case PathPhase::kSoftware:
        return "software";
      case PathPhase::kWire:
        return "wire";
      case PathPhase::kController:
        return "controller";
      case PathPhase::kQueueing:
        return "queueing";
    }
    return "unknown";
}

void
PhaseTotals::add(PathPhase phase, sim::Duration d)
{
    switch (phase) {
      case PathPhase::kSoftware:
        software += d;
        break;
      case PathPhase::kWire:
        wire += d;
        break;
      case PathPhase::kController:
        controller += d;
        break;
      case PathPhase::kQueueing:
        queueing += d;
        break;
    }
}

PhaseTotals &
PhaseTotals::operator+=(const PhaseTotals &other)
{
    software += other.software;
    wire += other.wire;
    controller += other.controller;
    queueing += other.queueing;
    return *this;
}

namespace {

/** Append a slice and book it in the op's totals. */
void
emitSlice(OpCriticalPath &path, PathPhase phase, std::string node,
          sim::Time begin, sim::Time end)
{
    if (end <= begin) {
        return;
    }
    path.totals.add(phase, end - begin);
    path.perNode[node].add(phase, end - begin);
    path.slices.push_back(PathSlice{phase, std::move(node), begin, end});
}

/**
 * Classify the uncovered gap [g0, g1): wire up to each arrival anchor
 * inside it, controller for the interrupt latency after an arrival,
 * queueing for the rest. @p fallbackNode takes the queueing when the
 * gap holds no arrival (the node that runs next, i.e. where the op is
 * waiting for CPU).
 */
void
classifyGap(OpCriticalPath &path, const std::vector<Arrival> &arrivals,
            sim::Time g0, sim::Time g1, sim::Duration interruptLatency,
            const std::string &fallbackNode)
{
    sim::Time pos = g0;
    const std::string *queueNode = &fallbackNode;
    for (const Arrival &a : arrivals) {
        if (a.ts < g0 || a.ts >= g1) {
            continue;
        }
        // In flight until the frame lands (a later anchor in the same
        // gap means the wire was still busy delivering for this op).
        emitSlice(path, PathPhase::kWire, a.node, pos, a.ts);
        sim::Time ctrlEnd = std::min(a.ts + interruptLatency, g1);
        emitSlice(path, PathPhase::kController, a.node, a.ts, ctrlEnd);
        pos = std::max(pos, ctrlEnd);
        queueNode = &a.node;
    }
    emitSlice(path, PathPhase::kQueueing, *queueNode, pos, g1);
}

} // namespace

std::vector<OpCriticalPath>
CriticalPathAnalyzer::analyze(const std::vector<TraceEvent> &events) const
{
    std::unordered_map<uint64_t, OpEvents> ops;
    for (const TraceEvent &ev : events) {
        switch (ev.phase) {
          case TracePhase::kAsyncBegin: {
            OpEvents &op = ops[ev.id];
            if (!op.begun) {
                op.begun = true;
                op.begin = ev.ts;
                op.name = ev.name;
                op.initiator = ev.node;
                op.parent = ev.parent;
            }
            break;
          }
          case TracePhase::kAsyncEnd: {
            OpEvents &op = ops[ev.id];
            if (!op.ended) {
                op.ended = true;
                op.end = ev.ts;
            }
            break;
          }
          case TracePhase::kSpan:
            if (ev.op != 0 && ev.dur >= 0) {
                ops[ev.op].spans.push_back(
                    SpanRange{ev.ts, ev.ts + ev.dur, ev.node});
            }
            break;
          case TracePhase::kInstant:
            if (ev.op != 0 && ev.name == kCellArrivalEvent) {
                ops[ev.op].arrivals.push_back(Arrival{ev.ts, ev.node});
            }
            break;
        }
    }

    std::vector<OpCriticalPath> out;
    for (auto &[id, op] : ops) {
        if (!op.begun || !op.ended || op.end < op.begin) {
            continue; // incomplete op (still open at export, or orphan)
        }
        OpCriticalPath path;
        path.id = id;
        path.parent = op.parent;
        path.name = op.name;
        path.initiator = op.initiator;
        path.begin = op.begin;
        path.end = op.end;

        std::sort(op.spans.begin(), op.spans.end(),
                  [](const SpanRange &a, const SpanRange &b) {
                      return a.begin != b.begin ? a.begin < b.begin
                                                : a.end < b.end;
                  });
        std::sort(op.arrivals.begin(), op.arrivals.end(),
                  [](const Arrival &a, const Arrival &b) {
                      return a.ts < b.ts;
                  });

        // Cursor sweep: union of spans is software; uncovered gaps are
        // split into wire / controller / queueing around the arrival
        // anchors.
        sim::Time cursor = op.begin;
        for (const SpanRange &s : op.spans) {
            if (s.end <= cursor || s.begin >= op.end) {
                continue; // fully covered already, or outside the window
            }
            sim::Time start = std::max(s.begin, op.begin);
            if (start > cursor) {
                classifyGap(path, op.arrivals, cursor, start,
                            params_.interruptLatency, s.node);
            }
            sim::Time swBegin = std::max(cursor, start);
            sim::Time swEnd = std::min(s.end, op.end);
            emitSlice(path, PathPhase::kSoftware, s.node, swBegin, swEnd);
            cursor = std::max(cursor, swEnd);
            if (cursor >= op.end) {
                break;
            }
        }
        if (cursor < op.end) {
            classifyGap(path, op.arrivals, cursor, op.end,
                        params_.interruptLatency, op.initiator);
        }
        out.push_back(std::move(path));
    }
    std::sort(out.begin(), out.end(),
              [](const OpCriticalPath &a, const OpCriticalPath &b) {
                  return a.begin != b.begin ? a.begin < b.begin
                                            : a.id < b.id;
              });
    return out;
}

std::map<std::string, CriticalPathAnalyzer::Summary>
CriticalPathAnalyzer::summarize(const std::vector<OpCriticalPath> &ops)
{
    std::map<std::string, Summary> out;
    for (const OpCriticalPath &op : ops) {
        Summary &s = out[op.name];
        if (s.count == 0 || op.latency() < s.minLatency) {
            s.minLatency = op.latency();
        }
        if (s.count == 0 || op.latency() > s.maxLatency) {
            s.maxLatency = op.latency();
        }
        ++s.count;
        s.totals += op.totals;
    }
    return out;
}

std::string
CriticalPathAnalyzer::renderText(const std::vector<OpCriticalPath> &ops)
{
    auto summary = summarize(ops);
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-12s %6s %10s %10s %10s %10s %10s\n", "op", "n",
                  "total_us", "software", "wire", "controller", "queueing");
    out += line;
    for (const auto &[name, s] : summary) {
        double n = static_cast<double>(s.count);
        std::snprintf(line, sizeof(line),
                      "%-12s %6zu %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                      name.c_str(), s.count,
                      sim::toUsec(s.totals.total()) / n,
                      sim::toUsec(s.totals.software) / n,
                      sim::toUsec(s.totals.wire) / n,
                      sim::toUsec(s.totals.controller) / n,
                      sim::toUsec(s.totals.queueing) / n);
        out += line;
    }
    return out;
}

std::string
CriticalPathAnalyzer::toJson(const std::vector<OpCriticalPath> &ops)
{
    util::JsonWriter w;
    auto phases = [&w](const PhaseTotals &t) {
        w.beginObject()
            .kv("software_us", sim::toUsec(t.software))
            .kv("wire_us", sim::toUsec(t.wire))
            .kv("controller_us", sim::toUsec(t.controller))
            .kv("queueing_us", sim::toUsec(t.queueing))
            .kv("total_us", sim::toUsec(t.total()))
            .endObject();
    };
    w.beginObject();
    w.key("ops").beginArray();
    for (const OpCriticalPath &op : ops) {
        w.beginObject()
            .kv("id", op.id)
            .kv("parent", op.parent)
            .kv("name", op.name)
            .kv("initiator", op.initiator)
            .kv("begin_us", sim::toUsec(op.begin))
            .kv("latency_us", sim::toUsec(op.latency()));
        w.key("phases");
        phases(op.totals);
        w.key("per_node").beginObject();
        for (const auto &[node, t] : op.perNode) {
            w.key(node);
            phases(t);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.key("summary").beginObject();
    for (const auto &[name, s] : summarize(ops)) {
        w.key(name).beginObject().kv("count", static_cast<uint64_t>(s.count));
        w.key("phases");
        phases(s.totals);
        w.kv("min_latency_us", sim::toUsec(s.minLatency))
            .kv("max_latency_us", sim::toUsec(s.maxLatency))
            .endObject();
    }
    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace remora::obs
