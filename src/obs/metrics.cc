#include "obs/metrics.h"

#include <cstdio>
#include <sstream>
#include <vector>

#include "util/json.h"
#include "util/strings.h"

namespace remora::obs {

void
MetricRegistry::add(const std::string &name, const sim::Counter &c)
{
    Entry e;
    e.kind = Entry::Kind::kCounter;
    e.object = &c;
    entries_[name] = std::move(e);
}

void
MetricRegistry::add(const std::string &name, const sim::Accumulator &a)
{
    Entry e;
    e.kind = Entry::Kind::kAccumulator;
    e.object = &a;
    entries_[name] = std::move(e);
}

void
MetricRegistry::add(const std::string &name, const sim::Histogram &h)
{
    Entry e;
    e.kind = Entry::Kind::kHistogram;
    e.object = &h;
    entries_[name] = std::move(e);
}

void
MetricRegistry::addGauge(const std::string &name, Gauge g)
{
    Entry e;
    e.kind = Entry::Kind::kGauge;
    e.gauge = std::move(g);
    entries_[name] = std::move(e);
}

void
MetricRegistry::removePrefix(const std::string &prefix)
{
    auto it = entries_.lower_bound(prefix);
    while (it != entries_.end() && it->first.rfind(prefix, 0) == 0) {
        it = entries_.erase(it);
    }
}

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry reg;
    return reg;
}

namespace {

std::string
renderText(const MetricRegistry::Gauge &gauge, const void *obj,
           int kind)
{
    char buf[200];
    switch (kind) {
      case 0: { // counter
        const auto *c = static_cast<const sim::Counter *>(obj);
        return std::to_string(c->value());
      }
      case 1: { // accumulator
        const auto *a = static_cast<const sim::Accumulator *>(obj);
        std::snprintf(buf, sizeof(buf),
                      "count=%llu mean=%.3f min=%.3f max=%.3f stddev=%.3f",
                      static_cast<unsigned long long>(a->count()), a->mean(),
                      a->count() ? a->min() : 0.0,
                      a->count() ? a->max() : 0.0, a->stddev());
        return buf;
      }
      case 2: { // histogram
        const auto *h = static_cast<const sim::Histogram *>(obj);
        if (h->total() == 0) {
            return "count=0";
        }
        std::snprintf(buf, sizeof(buf),
                      "count=%llu p50=%.3f p90=%.3f p99=%.3f",
                      static_cast<unsigned long long>(h->total()),
                      h->quantile(0.50), h->quantile(0.90), h->quantile(0.99));
        return buf;
      }
      default: { // gauge
        std::snprintf(buf, sizeof(buf), "%.3f", gauge());
        return buf;
      }
    }
}

void
renderJsonLeaf(util::JsonWriter &w, const MetricRegistry::Gauge &gauge,
               const void *obj, int kind)
{
    switch (kind) {
      case 0: {
        const auto *c = static_cast<const sim::Counter *>(obj);
        w.value(c->value());
        break;
      }
      case 1: {
        const auto *a = static_cast<const sim::Accumulator *>(obj);
        w.beginObject()
            .kv("count", a->count())
            .kv("mean", a->mean())
            .kv("min", a->count() ? a->min() : 0.0)
            .kv("max", a->count() ? a->max() : 0.0)
            .kv("stddev", a->stddev())
            .endObject();
        break;
      }
      case 2: {
        const auto *h = static_cast<const sim::Histogram *>(obj);
        w.beginObject().kv("count", h->total());
        if (h->total() > 0) {
            w.kv("p50", h->quantile(0.50))
                .kv("p90", h->quantile(0.90))
                .kv("p99", h->quantile(0.99));
        }
        w.kv("underflow", h->underflow()).kv("overflow", h->overflow());
        w.key("buckets").beginArray();
        for (size_t i = 0; i < h->buckets(); ++i) {
            if (h->bucketCount(i) == 0) {
                continue;
            }
            w.beginArray()
                .value(h->bucketLo(i))
                .value(h->bucketCount(i))
                .endArray();
        }
        w.endArray().endObject();
        break;
      }
      default:
        w.value(gauge());
        break;
    }
}

std::vector<std::string>
splitDotted(const std::string &name)
{
    std::vector<std::string> parts;
    size_t start = 0;
    for (;;) {
        size_t dot = name.find('.', start);
        if (dot == std::string::npos) {
            parts.push_back(name.substr(start));
            return parts;
        }
        parts.push_back(name.substr(start, dot - start));
        start = dot + 1;
    }
}

} // namespace

std::string
MetricRegistry::dump() const
{
    std::ostringstream out;
    for (const auto &[name, e] : entries_) {
        out << name << ' '
            << renderText(e.gauge, e.object, static_cast<int>(e.kind))
            << '\n';
    }
    return out.str();
}

std::string
MetricRegistry::dumpJson() const
{
    util::JsonWriter w;
    w.beginObject();
    // entries_ is sorted, so shared dotted prefixes are adjacent: keep a
    // stack of open objects matching the current path.
    std::vector<std::string> open;
    for (const auto &[name, e] : entries_) {
        std::vector<std::string> parts = splitDotted(name);
        size_t common = 0;
        while (common < open.size() && common + 1 < parts.size() &&
               open[common] == parts[common]) {
            ++common;
        }
        while (open.size() > common) {
            w.endObject();
            open.pop_back();
        }
        while (open.size() + 1 < parts.size()) {
            w.key(parts[open.size()]).beginObject();
            open.push_back(parts[open.size()]);
        }
        w.key(parts.back());
        renderJsonLeaf(w, e.gauge, e.object, static_cast<int>(e.kind));
    }
    while (!open.empty()) {
        w.endObject();
        open.pop_back();
    }
    w.endObject();
    return w.str();
}

} // namespace remora::obs
