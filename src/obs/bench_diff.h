/**
 * @file
 * Bench regression comparison: baseline report vs candidate report.
 *
 * The regression gate (scripts/check.sh --bench) re-runs the benches,
 * then compares each fresh BENCH_<name>.json against the checked-in
 * copy under bench/baselines/. A metric fails when its relative change
 * exceeds its tolerance (two-sided by default: surprise speedups want
 * the baseline refreshed, not ignored); a metric or check that
 * disappears fails structurally; a check that flips to false fails.
 * New metrics in the candidate are reported but do not fail — they are
 * what a baseline refresh is for.
 *
 * Metrics with a known direction can opt out of the two-sided rule: a
 * "higher is better" metric (throughput, speedup ratio) fails only on
 * a drop beyond tolerance, and a "lower is better" one (latency, CPU
 * busy) only on a rise. Moves in the good direction are never failures
 * for a directed metric — the gate's job there is catching
 * regressions, not celebrating wins.
 *
 * The comparison logic lives here in the library (not in the CLI) so
 * the unit tests can drive it on synthetic reports — including the
 * injected-regression case the gate is contractually required to
 * catch.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/json.h"

namespace remora::obs {

/** Comparison knobs. */
struct BenchDiffOptions
{
    /** Two-sided relative tolerance applied when no override matches. */
    double defaultTolerancePct = 5.0;
    /** Per-metric overrides, full dotted metric name -> tolerance pct. */
    std::map<std::string, double> tolerances;
    /**
     * Per-metric direction hints, full dotted metric name -> sign.
     * +1 means higher is better (fail only when the candidate drops
     * more than tolerance below baseline); -1 means lower is better
     * (fail only when it rises more than tolerance above). Metrics not
     * listed keep the two-sided rule.
     */
    std::map<std::string, int> directions;
};

/** One compared metric. */
struct BenchDiffEntry
{
    std::string metric;
    double baseline = 0.0;
    double candidate = 0.0;
    /** Relative change, percent (0 when baseline == 0). */
    double deltaPct = 0.0;
    double tolerancePct = 0.0;
    /** Direction hint applied: +1 higher-is-better, -1 lower, 0 two-sided. */
    int direction = 0;
    bool ok = true;
};

/** Outcome of comparing one bench's reports. */
struct BenchDiffResult
{
    /** Bench name from the baseline report. */
    std::string bench;
    /** Per-metric comparisons, baseline order. */
    std::vector<BenchDiffEntry> entries;
    /** Structural failures: missing metrics, flipped checks, bad JSON. */
    std::vector<std::string> errors;
    /** Candidate-only metric names (informational). */
    std::vector<std::string> fresh;

    /** True when every metric is within tolerance and errors is empty. */
    bool pass() const;

    /** Human-readable rendering, one line per finding. */
    std::string render() const;
};

/**
 * Compare two parsed bench reports.
 *
 * @param baseline The checked-in reference report.
 * @param candidate The freshly generated report.
 * @param opts Tolerances.
 */
BenchDiffResult diffReports(const util::JsonValue &baseline,
                            const util::JsonValue &candidate,
                            const BenchDiffOptions &opts = {});

/** diffReports() over raw JSON text; parse errors land in errors. */
BenchDiffResult diffReportText(const std::string &baselineText,
                               const std::string &candidateText,
                               const BenchDiffOptions &opts = {});

} // namespace remora::obs
