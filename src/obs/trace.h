/**
 * @file
 * Cluster-wide, simulated-time trace recording.
 *
 * The paper's results are latency *decompositions*: where a
 * meta-instruction spends its microseconds between issue, the wire,
 * the serving kernel, and the notification path. TraceRecorder captures
 * exactly that — every instrumented component posts spans (work with a
 * duration), instants (points in time), and async ops (one logical
 * operation crossing nodes, correlated by id) against the simulated
 * clock, scoped by node and component.
 *
 * Recording is off by default and the instrumentation fast-path is a
 * single static bool, so benches pay nothing. When enabled, a run can
 * be exported as Chrome trace_event JSON (open in chrome://tracing or
 * https://ui.perfetto.dev): nodes render as processes, components as
 * threads, and async ops as arrows across them.
 *
 * One recorder per process, matching the one-simulation-per-process
 * model the Logger already assumes.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace remora::obs {

/** What kind of trace record an event is. */
enum class TracePhase : uint8_t
{
    /** A span: work with a start time and duration. */
    kSpan,
    /** A point event. */
    kInstant,
    /** Start of an id-correlated operation (may end on another node). */
    kAsyncBegin,
    /** End of an id-correlated operation. */
    kAsyncEnd,
};

/** One recorded event. */
struct TraceEvent
{
    TracePhase phase;
    /** Simulated start time, ns. */
    sim::Time ts = 0;
    /** Span duration, ns (kSpan only; -1 while the span is open). */
    sim::Duration dur = -1;
    /** Correlation id (async phases only). */
    uint64_t id = 0;
    /**
     * The async op this event belongs to (0 = unattributed). For async
     * phases this equals @ref id; for spans and instants it is adopted
     * from the ambient OpScope or passed explicitly via the *For()
     * variants. This is what stitches per-node events into one
     * cross-node DAG.
     */
    uint64_t op = 0;
    /**
     * Enclosing async op at asyncBegin time (0 = root). Captured from
     * the ambient scope so nested ops (an RPC built from rmem writes,
     * a DFS op built from RPCs) form a tree.
     */
    uint64_t parent = 0;
    /** Node scope (Chrome "process"), e.g. "client". */
    std::string node;
    /** Component scope (Chrome "thread"), e.g. "rmem". */
    std::string comp;
    /** Event name, e.g. "serve_read". */
    std::string name;
    /** Free-form detail, rendered as the event's args. */
    std::string detail;
};

/** Handle returned by beginSpan(); pass to endSpan(). */
using SpanId = size_t;

/** Sentinel handle returned when recording is disabled. */
inline constexpr SpanId kNoSpan = static_cast<SpanId>(-1);

/**
 * Instant emitted by the host interface when the last cell of an
 * op-stamped frame lands in the RX FIFO. The critical-path analyzer
 * keys on this name to split a cross-node gap into wire time (up to
 * the arrival) and controller/queueing time (after it).
 */
inline constexpr std::string_view kCellArrivalEvent = "cell_rx";

/** The process-wide trace recorder. */
class TraceRecorder
{
  public:
    /** The process-wide instance. */
    static TraceRecorder &instance();

    /**
     * Cheapest possible "is tracing on" check, for instrumentation
     * fast paths.
     */
    static bool on() { return on_; }

    /**
     * Start recording against @p simulator's clock. Events already
     * recorded are kept (enable/disable brackets a region of interest).
     */
    void enable(sim::Simulator &simulator);

    /** Stop recording. Open spans stay open until export. */
    void disable();

    /** Drop all recorded events. Invalidates outstanding SpanIds. */
    void clear();

    /**
     * Bound on stored events; once reached, further records are counted
     * in dropped() and discarded (newest-lose keeps SpanIds stable).
     */
    void setCapacity(size_t maxEvents);

    /** Events discarded because the capacity was reached. */
    uint64_t dropped() const { return dropped_; }

    /** A fresh id for an async operation. */
    uint64_t newAsyncId() { return nextAsyncId_++; }

    /**
     * The async op ambient in the current synchronous call chain
     * (0 = none). Established by OpScope; spans and instants recorded
     * while a scope is live are stamped with it automatically.
     *
     * Ambient context does NOT survive coroutine suspension — a
     * coroutine resumed from the event queue runs outside the scope it
     * was created under. Coroutine code must capture the op id and use
     * the explicit *For() variants instead.
     */
    static uint64_t currentOp() { return currentOp_; }

    /**
     * Open a span on (node, comp) starting now.
     *
     * @return Handle for endSpan(), or kNoSpan when disabled/full.
     */
    SpanId beginSpan(std::string_view node, std::string_view comp,
                     std::string_view name, std::string detail = {});

    /** beginSpan() attributed to async op @p op (for coroutine code). */
    SpanId beginSpanFor(uint64_t op, std::string_view node,
                        std::string_view comp, std::string_view name,
                        std::string detail = {});

    /** Close a span; kNoSpan and stale handles are ignored. */
    void endSpan(SpanId span);

    /** Record a point event. */
    void instant(std::string_view node, std::string_view comp,
                 std::string_view name, std::string detail = {});

    /** instant() attributed to async op @p op (for coroutine code). */
    void instantFor(uint64_t op, std::string_view node,
                    std::string_view comp, std::string_view name,
                    std::string detail = {});

    /** Open async op @p id (correlates across nodes). */
    void asyncBegin(uint64_t id, std::string_view node, std::string_view comp,
                    std::string_view name, std::string detail = {});

    /** Close async op @p id. Name and comp must match the begin. */
    void asyncEnd(uint64_t id, std::string_view node, std::string_view comp,
                  std::string_view name, std::string detail = {});

    /** All recorded events, in record order. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Number of recorded events. */
    size_t eventCount() const { return events_.size(); }

    /**
     * Render the recording as a Chrome trace_event JSON document.
     * Open spans are closed at the current (or last-known) sim time.
     */
    std::string toChromeJson() const;

    /**
     * Write toChromeJson() to @p path.
     *
     * @return True on success.
     */
    bool writeChromeJson(const std::string &path) const;

  private:
    TraceRecorder() = default;

    /** Append an event if recording; returns its index or kNoSpan. */
    SpanId push(TraceEvent &&ev);

    static bool on_;
    static uint64_t currentOp_;
    sim::Simulator *sim_ = nullptr;
    std::vector<TraceEvent> events_;
    size_t capacity_ = 1u << 20;
    uint64_t dropped_ = 0;
    uint64_t nextAsyncId_ = 1;

    friend class OpScope;
};

/**
 * RAII ambient op context: while alive, spans and instants recorded in
 * the same synchronous call chain are stamped with @p op, and nested
 * asyncBegin()s record it as their parent. Scopes nest (saved/restored
 * like a stack variable).
 *
 * Only valid across straight-line code — never hold one across a
 * co_await; the resumption runs from the event queue with whatever
 * scope happens to be live there. Deferred callbacks (cpu.post
 * lambdas) should capture currentOp() at creation and re-establish an
 * OpScope inside the lambda body.
 */
class OpScope
{
  public:
    explicit OpScope(uint64_t op) : saved_(TraceRecorder::currentOp_)
    {
        TraceRecorder::currentOp_ = op;
    }

    OpScope(const OpScope &) = delete;
    OpScope &operator=(const OpScope &) = delete;

    ~OpScope() { TraceRecorder::currentOp_ = saved_; }

  private:
    uint64_t saved_;
};

/**
 * RAII span for straight-line (non-suspending) code. Coroutines that
 * suspend across the span should use explicit beginSpan()/endSpan()
 * so the span closes at completion time, not frame destruction.
 */
class TraceScope
{
  public:
    TraceScope(std::string_view node, std::string_view comp,
               std::string_view name, std::string detail = {})
        : span_(TraceRecorder::on()
                    ? TraceRecorder::instance().beginSpan(node, comp, name,
                                                          std::move(detail))
                    : kNoSpan)
    {}

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    ~TraceScope()
    {
        if (span_ != kNoSpan) {
            TraceRecorder::instance().endSpan(span_);
        }
    }

  private:
    SpanId span_;
};

} // namespace remora::obs
