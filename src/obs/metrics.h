/**
 * @file
 * The unified metric registry: every counter in the cluster, one dump.
 *
 * Components own their sim::Counter / Accumulator / Histogram objects
 * exactly as before; MetricRegistry holds *references* under
 * hierarchical dotted names ("node3.rmem.writes_issued") so a whole
 * cluster's state renders as one sorted text dump or one nested JSON
 * document. Each instrumented class provides a registerStats(registry,
 * prefix) method that registers everything it owns, so wiring a node
 * into the registry is one call per layer.
 *
 * Gauges cover values that are not stored in a stats object (queue
 * depths, CPU busy time): they are sampled through a callback at dump
 * time.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/stats.h"

namespace remora::obs {

/** Hierarchical, type-aware registry of borrowed stats objects. */
class MetricRegistry
{
  public:
    /** Sampled-at-dump-time numeric metric. */
    using Gauge = std::function<double()>;

    /** Register a counter; it must outlive the registry's use. */
    void add(const std::string &name, const sim::Counter &c);

    /** Register an accumulator. */
    void add(const std::string &name, const sim::Accumulator &a);

    /** Register a histogram. */
    void add(const std::string &name, const sim::Histogram &h);

    /** Register a gauge callback. */
    void addGauge(const std::string &name, Gauge g);

    /** Drop every metric whose name starts with @p prefix. */
    void removePrefix(const std::string &prefix);

    /** Number of registered metrics. */
    size_t size() const { return entries_.size(); }

    /** "name value" lines, sorted by name. */
    std::string dump() const;

    /**
     * One JSON document: dotted names become nested objects, so
     * "node1.rmem.writes_issued" lands at json["node1"]["rmem"]
     * ["writes_issued"].
     */
    std::string dumpJson() const;

    /** The process-wide default registry. */
    static MetricRegistry &global();

  private:
    struct Entry
    {
        enum class Kind : uint8_t
        {
            kCounter,
            kAccumulator,
            kHistogram,
            kGauge,
        };
        Kind kind;
        const void *object = nullptr;
        Gauge gauge;
    };

    std::map<std::string, Entry> entries_;
};

} // namespace remora::obs
