#include "obs/bench_diff.h"

#include <cmath>
#include <cstdio>

namespace remora::obs {

namespace {

/** Flat name -> value view of a report's "metrics" array. */
std::map<std::string, double>
metricMap(const util::JsonValue &report, std::vector<std::string> *order)
{
    std::map<std::string, double> out;
    const util::JsonValue *metrics = report.find("metrics");
    if (metrics == nullptr || !metrics->isArray()) {
        return out;
    }
    for (const util::JsonValue &m : metrics->items()) {
        const util::JsonValue *name = m.find("name");
        const util::JsonValue *value = m.find("value");
        if (name == nullptr || !name->isString() || value == nullptr ||
            !value->isNumber()) {
            continue;
        }
        if (out.emplace(name->asString(), value->asNumber()).second &&
            order != nullptr) {
            order->push_back(name->asString());
        }
    }
    return out;
}

/** Flat name -> ok view of a report's "checks" array. */
std::map<std::string, bool>
checkMap(const util::JsonValue &report)
{
    std::map<std::string, bool> out;
    const util::JsonValue *checks = report.find("checks");
    if (checks == nullptr || !checks->isArray()) {
        return out;
    }
    for (const util::JsonValue &c : checks->items()) {
        const util::JsonValue *name = c.find("name");
        const util::JsonValue *ok = c.find("ok");
        if (name != nullptr && name->isString() && ok != nullptr &&
            ok->isBool()) {
            out.emplace(name->asString(), ok->asBool());
        }
    }
    return out;
}

} // namespace

bool
BenchDiffResult::pass() const
{
    if (!errors.empty()) {
        return false;
    }
    for (const auto &e : entries) {
        if (!e.ok) {
            return false;
        }
    }
    return true;
}

std::string
BenchDiffResult::render() const
{
    std::string out;
    char line[256];
    for (const auto &err : errors) {
        out += "  FAIL  " + err + "\n";
    }
    for (const auto &e : entries) {
        if (e.ok) {
            continue;
        }
        const char *dirNote =
            e.direction > 0 ? ", higher is better"
                            : (e.direction < 0 ? ", lower is better" : "");
        std::snprintf(line, sizeof(line),
                      "  FAIL  %s: %.4g -> %.4g (%+.1f%%, tolerance "
                      "%.1f%%%s)\n",
                      e.metric.c_str(), e.baseline, e.candidate, e.deltaPct,
                      e.tolerancePct, dirNote);
        out += line;
    }
    for (const auto &name : fresh) {
        out += "  note  new metric (not in baseline): " + name + "\n";
    }
    if (out.empty()) {
        std::snprintf(line, sizeof(line), "  ok    %zu metrics within "
                      "tolerance\n", entries.size());
        out = line;
    }
    return out;
}

BenchDiffResult
diffReports(const util::JsonValue &baseline, const util::JsonValue &candidate,
            const BenchDiffOptions &opts)
{
    BenchDiffResult result;
    const util::JsonValue *bname = baseline.find("bench");
    if (bname != nullptr && bname->isString()) {
        result.bench = bname->asString();
    }
    const util::JsonValue *cname = candidate.find("bench");
    if (cname != nullptr && cname->isString() && cname->asString() !=
        result.bench) {
        result.errors.push_back("bench name mismatch: baseline \"" +
                                result.bench + "\" vs candidate \"" +
                                cname->asString() + "\"");
    }

    std::vector<std::string> order;
    auto base = metricMap(baseline, &order);
    auto cand = metricMap(candidate, nullptr);
    for (const auto &name : order) {
        auto it = cand.find(name);
        if (it == cand.end()) {
            result.errors.push_back("metric missing from candidate: " + name);
            continue;
        }
        BenchDiffEntry e;
        e.metric = name;
        e.baseline = base[name];
        e.candidate = it->second;
        auto tol = opts.tolerances.find(name);
        e.tolerancePct = tol != opts.tolerances.end()
                             ? tol->second
                             : opts.defaultTolerancePct;
        auto dir = opts.directions.find(name);
        e.direction = dir != opts.directions.end()
                          ? (dir->second < 0 ? -1 : 1)
                          : 0;
        if (e.baseline == 0.0) {
            // No relative scale; only an exact hold is meaningful —
            // except that a directed metric moving the good way from
            // zero is an improvement, not a regression.
            e.deltaPct = 0.0;
            e.ok = e.candidate == 0.0 ||
                   (e.direction != 0 &&
                    e.direction * (e.candidate - e.baseline) > 0.0);
        } else {
            e.deltaPct =
                100.0 * (e.candidate - e.baseline) / std::abs(e.baseline);
            if (e.direction > 0) {
                // Higher is better: only a drop past tolerance fails.
                e.ok = e.deltaPct >= -e.tolerancePct;
            } else if (e.direction < 0) {
                // Lower is better: only a rise past tolerance fails.
                e.ok = e.deltaPct <= e.tolerancePct;
            } else {
                e.ok = std::abs(e.deltaPct) <= e.tolerancePct;
            }
        }
        result.entries.push_back(e);
    }
    for (const auto &[name, value] : cand) {
        (void)value;
        if (base.find(name) == base.end()) {
            result.fresh.push_back(name);
        }
    }

    auto baseChecks = checkMap(baseline);
    auto candChecks = checkMap(candidate);
    for (const auto &[name, ok] : baseChecks) {
        auto it = candChecks.find(name);
        if (it == candChecks.end()) {
            result.errors.push_back("check missing from candidate: " + name);
        } else if (ok && !it->second) {
            result.errors.push_back("check regressed to false: " + name);
        }
    }
    for (const auto &[name, ok] : candChecks) {
        if (!ok && baseChecks.find(name) == baseChecks.end()) {
            result.errors.push_back("new check is failing: " + name);
        }
    }
    return result;
}

BenchDiffResult
diffReportText(const std::string &baselineText,
               const std::string &candidateText, const BenchDiffOptions &opts)
{
    auto base = util::JsonValue::parse(baselineText);
    if (!base.ok()) {
        BenchDiffResult r;
        r.errors.push_back("baseline unparsable: " +
                           base.status().toString());
        return r;
    }
    auto cand = util::JsonValue::parse(candidateText);
    if (!cand.ok()) {
        BenchDiffResult r;
        r.errors.push_back("candidate unparsable: " +
                           cand.status().toString());
        return r;
    }
    return diffReports(base.value(), cand.value(), opts);
}

} // namespace remora::obs
