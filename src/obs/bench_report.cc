#include "obs/bench_report.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/json.h"

namespace remora::obs {

void
BenchReport::metric(const std::string &name, double value,
                    const std::string &unit, double paper)
{
    metrics_.push_back({name, value, unit, paper});
}

void
BenchReport::percentiles(const std::string &name, const sim::Histogram &h,
                         const std::string &unit)
{
    if (h.total() == 0) {
        return;
    }
    metric(name + ".p50", h.quantile(0.50), unit);
    metric(name + ".p90", h.quantile(0.90), unit);
    metric(name + ".p99", h.quantile(0.99), unit);
    metric(name + ".p999", h.quantile(0.999), unit);
    if (h.outOfRange() != 0) {
        metric(name + ".out_of_range",
               static_cast<double>(h.outOfRange()), "samples");
    }
}

void
BenchReport::check(const std::string &name, bool ok)
{
    checks_.push_back({name, ok});
}

bool
BenchReport::allChecksPass() const
{
    for (const auto &c : checks_) {
        if (!c.ok) {
            return false;
        }
    }
    return true;
}

std::string
BenchReport::toJson() const
{
    util::JsonWriter w;
    w.beginObject();
    w.kv("bench", name_);
    w.key("metrics").beginArray();
    for (const auto &m : metrics_) {
        w.beginObject();
        w.kv("name", m.name);
        w.kv("value", m.value);
        if (!m.unit.empty()) {
            w.kv("unit", m.unit);
        }
        if (!std::isnan(m.paper)) {
            w.kv("paper", m.paper);
            if (m.paper != 0.0) {
                w.kv("deviation_pct", 100.0 * (m.value - m.paper) / m.paper);
            }
        }
        w.endObject();
    }
    w.endArray();
    w.key("checks").beginArray();
    for (const auto &c : checks_) {
        w.beginObject().kv("name", c.name).kv("ok", c.ok).endObject();
    }
    w.endArray();
    w.key("notes").beginArray();
    for (const auto &n : notes_) {
        w.value(n);
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
BenchReport::write() const
{
    std::string path = "BENCH_" + name_ + ".json";
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "bench: cannot write %s\n", tmp.c_str());
            return false;
        }
        out << toJson() << "\n";
        out.flush();
        if (!out) {
            std::fprintf(stderr, "bench: short write to %s\n", tmp.c_str());
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "bench: cannot rename %s to %s\n", tmp.c_str(),
                     path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    std::printf("[bench report: %s]\n", path.c_str());
    return true;
}

} // namespace remora::obs
