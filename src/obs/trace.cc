#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "util/json.h"

namespace remora::obs {

bool TraceRecorder::on_ = false;
uint64_t TraceRecorder::currentOp_ = 0;

TraceRecorder &
TraceRecorder::instance()
{
    static TraceRecorder rec;
    return rec;
}

void
TraceRecorder::enable(sim::Simulator &simulator)
{
    sim_ = &simulator;
    on_ = true;
}

void
TraceRecorder::disable()
{
    on_ = false;
}

void
TraceRecorder::clear()
{
    events_.clear();
    dropped_ = 0;
}

void
TraceRecorder::setCapacity(size_t maxEvents)
{
    capacity_ = maxEvents;
}

SpanId
TraceRecorder::push(TraceEvent &&ev)
{
    if (!on_ || sim_ == nullptr) {
        return kNoSpan;
    }
    if (events_.size() >= capacity_) {
        ++dropped_;
        return kNoSpan;
    }
    ev.ts = sim_->now();
    if (ev.op == 0) {
        ev.op = currentOp_;
    }
    events_.push_back(std::move(ev));
    return events_.size() - 1;
}

SpanId
TraceRecorder::beginSpan(std::string_view node, std::string_view comp,
                         std::string_view name, std::string detail)
{
    TraceEvent ev;
    ev.phase = TracePhase::kSpan;
    ev.node = node;
    ev.comp = comp;
    ev.name = name;
    ev.detail = std::move(detail);
    return push(std::move(ev));
}

SpanId
TraceRecorder::beginSpanFor(uint64_t op, std::string_view node,
                            std::string_view comp, std::string_view name,
                            std::string detail)
{
    TraceEvent ev;
    ev.phase = TracePhase::kSpan;
    ev.op = op;
    ev.node = node;
    ev.comp = comp;
    ev.name = name;
    ev.detail = std::move(detail);
    return push(std::move(ev));
}

void
TraceRecorder::endSpan(SpanId span)
{
    if (span == kNoSpan || span >= events_.size()) {
        return;
    }
    TraceEvent &ev = events_[span];
    if (ev.phase != TracePhase::kSpan || ev.dur >= 0 || sim_ == nullptr) {
        return; // stale handle after clear(), or double end
    }
    ev.dur = sim_->now() - ev.ts;
}

void
TraceRecorder::instant(std::string_view node, std::string_view comp,
                       std::string_view name, std::string detail)
{
    TraceEvent ev;
    ev.phase = TracePhase::kInstant;
    ev.node = node;
    ev.comp = comp;
    ev.name = name;
    ev.detail = std::move(detail);
    push(std::move(ev));
}

void
TraceRecorder::instantFor(uint64_t op, std::string_view node,
                          std::string_view comp, std::string_view name,
                          std::string detail)
{
    TraceEvent ev;
    ev.phase = TracePhase::kInstant;
    ev.op = op;
    ev.node = node;
    ev.comp = comp;
    ev.name = name;
    ev.detail = std::move(detail);
    push(std::move(ev));
}

void
TraceRecorder::asyncBegin(uint64_t id, std::string_view node,
                          std::string_view comp, std::string_view name,
                          std::string detail)
{
    TraceEvent ev;
    ev.phase = TracePhase::kAsyncBegin;
    ev.id = id;
    ev.op = id;
    ev.parent = currentOp_;
    ev.node = node;
    ev.comp = comp;
    ev.name = name;
    ev.detail = std::move(detail);
    push(std::move(ev));
}

void
TraceRecorder::asyncEnd(uint64_t id, std::string_view node,
                        std::string_view comp, std::string_view name,
                        std::string detail)
{
    TraceEvent ev;
    ev.phase = TracePhase::kAsyncEnd;
    ev.id = id;
    ev.op = id;
    ev.node = node;
    ev.comp = comp;
    ev.name = name;
    ev.detail = std::move(detail);
    push(std::move(ev));
}

std::string
TraceRecorder::toChromeJson() const
{
    // Stable pid/tid assignment: nodes and (node, comp) pairs numbered
    // in order of first appearance.
    std::map<std::string, int> pids;
    std::map<std::pair<std::string, std::string>, int> tids;
    auto pidOf = [&pids](const std::string &node) {
        auto [it, inserted] =
            pids.emplace(node, static_cast<int>(pids.size()) + 1);
        (void)inserted;
        return it->second;
    };
    auto tidOf = [&tids](const std::string &node, const std::string &comp) {
        auto [it, inserted] = tids.emplace(
            std::make_pair(node, comp), static_cast<int>(tids.size()) + 1);
        (void)inserted;
        return it->second;
    };

    sim::Time lastTs = sim_ != nullptr ? sim_->now() : 0;

    util::JsonWriter w;
    w.beginObject().key("traceEvents").beginArray();

    // First pass assigns ids so metadata can lead; Chrome accepts
    // metadata anywhere, but leading keeps the file human-scannable.
    for (const TraceEvent &ev : events_) {
        pidOf(ev.node);
        tidOf(ev.node, ev.comp);
    }
    for (const auto &[node, pid] : pids) {
        w.beginObject()
            .kv("name", "process_name")
            .kv("ph", "M")
            .kv("pid", static_cast<int64_t>(pid))
            .key("args")
            .beginObject()
            .kv("name", node)
            .endObject()
            .endObject();
        w.beginObject()
            .kv("name", "process_sort_index")
            .kv("ph", "M")
            .kv("pid", static_cast<int64_t>(pid))
            .key("args")
            .beginObject()
            .kv("sort_index", static_cast<int64_t>(pid))
            .endObject()
            .endObject();
    }
    for (const auto &[key, tid] : tids) {
        w.beginObject()
            .kv("name", "thread_name")
            .kv("ph", "M")
            .kv("pid", static_cast<int64_t>(pids.at(key.first)))
            .kv("tid", static_cast<int64_t>(tid))
            .key("args")
            .beginObject()
            .kv("name", key.second)
            .endObject()
            .endObject();
        w.beginObject()
            .kv("name", "thread_sort_index")
            .kv("ph", "M")
            .kv("pid", static_cast<int64_t>(pids.at(key.first)))
            .kv("tid", static_cast<int64_t>(tid))
            .key("args")
            .beginObject()
            .kv("sort_index", static_cast<int64_t>(tid))
            .endObject()
            .endObject();
    }

    for (const TraceEvent &ev : events_) {
        w.beginObject()
            .kv("name", ev.name)
            .kv("cat", ev.comp)
            .kv("pid", static_cast<int64_t>(pidOf(ev.node)))
            .kv("tid", static_cast<int64_t>(tidOf(ev.node, ev.comp)))
            .kv("ts", sim::toUsec(ev.ts));
        switch (ev.phase) {
          case TracePhase::kSpan: {
            sim::Duration dur =
                ev.dur >= 0 ? ev.dur : std::max<sim::Duration>(
                                           0, lastTs - ev.ts);
            w.kv("ph", "X").kv("dur", sim::toUsec(dur));
            break;
          }
          case TracePhase::kInstant:
            w.kv("ph", "i").kv("s", "t");
            break;
          case TracePhase::kAsyncBegin:
            w.kv("ph", "b").kv("id", ev.id);
            break;
          case TracePhase::kAsyncEnd:
            w.kv("ph", "e").kv("id", ev.id);
            break;
        }
        if (!ev.detail.empty() || ev.op != 0 || ev.parent != 0) {
            w.key("args").beginObject();
            if (!ev.detail.empty()) {
                w.kv("detail", ev.detail);
            }
            if (ev.op != 0) {
                w.kv("op", ev.op);
            }
            if (ev.parent != 0) {
                w.kv("parent", ev.parent);
            }
            w.endObject();
        }
        w.endObject();
    }

    w.endArray().kv("displayTimeUnit", "ns").endObject();
    return w.str();
}

bool
TraceRecorder::writeChromeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return false;
    }
    std::string doc = toChromeJson();
    size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    bool ok = (written == doc.size()) && (std::fclose(f) == 0);
    if (!ok && written != doc.size()) {
        std::fclose(f);
    }
    return ok;
}

} // namespace remora::obs
