/**
 * @file
 * Machine-readable bench reports.
 *
 * Every bench builds one of these alongside its printed TextTable and
 * calls write() at the end, producing BENCH_<name>.json next to the
 * binary so sweeps, CI, and the bench_diff regression gate can consume
 * the numbers without screen-scraping. Metric names are dotted paths
 * ("read.latency_us"); a metric with a paper value also records its
 * percentage deviation; histogram tails are published as .p50/.p90/
 * .p99/.p999 metrics.
 *
 * write() is atomic (temp file + rename), so a gate reading the report
 * concurrently — or a bench killed mid-write — never sees a torn file.
 */
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "sim/stats.h"

namespace remora::obs {

/** One bench run's metrics, checks, and notes; serializes to JSON. */
class BenchReport
{
  public:
    explicit BenchReport(std::string name) : name_(std::move(name)) {}

    /** Record one measured value; @p paper NaN means no paper figure. */
    void metric(const std::string &name, double value,
                const std::string &unit,
                double paper = std::numeric_limits<double>::quiet_NaN());

    /**
     * Publish @p h's latency tail as "<name>.p50" / ".p90" / ".p99" /
     * ".p999" metrics (plus ".out_of_range" when any observation
     * escaped the bucketed range). No-op on an empty histogram.
     */
    void percentiles(const std::string &name, const sim::Histogram &h,
                     const std::string &unit);

    /** Record a pass/fail shape check. */
    void check(const std::string &name, bool ok);

    /** Attach free-form context (conditions, caveats). */
    void note(const std::string &text) { notes_.push_back(text); }

    /** True when every recorded check passed. */
    bool allChecksPass() const;

    /** The report as a JSON document. */
    std::string toJson() const;

    /**
     * Write the report atomically to BENCH_<name>.json in the working
     * directory (temp file + rename).
     *
     * @return True on success.
     */
    bool write() const;

  private:
    struct Metric
    {
        std::string name;
        double value;
        std::string unit;
        double paper;
    };
    struct Check
    {
        std::string name;
        bool ok;
    };

    std::string name_;
    std::vector<Metric> metrics_;
    std::vector<Check> checks_;
    std::vector<std::string> notes_;
};

} // namespace remora::obs
