/**
 * @file
 * Critical-path latency attribution over a trace recording.
 *
 * The paper's Table 2 decomposes each meta-instruction's latency into
 * software, wire, and controller microseconds — but those are *model*
 * numbers, computed from constants. This analyzer derives the same
 * decomposition empirically, by walking the cross-node event DAG the
 * op-id propagation stitches together, and adds the phase the static
 * counters cannot see: **queueing**, the time an op spends ready but
 * not running (CPU busy with other work, drain loop not yet at our
 * message, notification not yet dispatched).
 *
 * The walk is a cursor sweep over the op's window [asyncBegin ts,
 * asyncEnd ts]:
 *
 *  - time covered by an op-stamped span is software on that span's
 *    node (overlapping spans count once — the union is what ran);
 *  - an uncovered gap containing a cell-arrival anchor (see
 *    obs::kCellArrivalEvent) is wire up to the arrival, controller for
 *    the interrupt latency after it, and queueing for the remainder;
 *  - an uncovered gap with no arrival is queueing, attributed to the
 *    node that runs next.
 *
 * Software plus queueing here corresponds to the engine's "software"
 * phase (the engine folds queueing into software because its model
 * can't separate them); wire and controller correspond directly. The
 * bench gate checks that agreement to within 1%.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/time.h"

namespace remora::obs {

/** Where a slice of an op's wall time went. */
enum class PathPhase : uint8_t
{
    /** An op-stamped span was running (kernel emulation, PIO, copies). */
    kSoftware,
    /** Cells in flight: serialization plus propagation. */
    kWire,
    /** NIC interrupt latency after a frame arrival. */
    kController,
    /** Ready but not running: CPU busy, drain backlog, dispatch delay. */
    kQueueing,
};

/** Printable name of @p phase. */
const char *pathPhaseName(PathPhase phase);

/** One attributed slice of an op's timeline. */
struct PathSlice
{
    PathPhase phase;
    /** Node the slice is attributed to ("wire" slices: the receiver). */
    std::string node;
    /** Slice window, ns. */
    sim::Time begin = 0;
    sim::Time end = 0;

    sim::Duration duration() const { return end - begin; }
};

/** Per-phase totals, ns. */
struct PhaseTotals
{
    sim::Duration software = 0;
    sim::Duration wire = 0;
    sim::Duration controller = 0;
    sim::Duration queueing = 0;

    sim::Duration
    total() const
    {
        return software + wire + controller + queueing;
    }

    void add(PathPhase phase, sim::Duration d);
    PhaseTotals &operator+=(const PhaseTotals &other);
};

/** The analyzed critical path of one async op. */
struct OpCriticalPath
{
    /** The op's async id. */
    uint64_t id = 0;
    /** Parent op id (0 = root). */
    uint64_t parent = 0;
    /** Op name from its asyncBegin ("read", "write", "hy_call", ...). */
    std::string name;
    /** Node that began the op. */
    std::string initiator;
    /** Op window, ns. */
    sim::Time begin = 0;
    sim::Time end = 0;
    /** The attributed timeline, in time order, gap-free over the window. */
    std::vector<PathSlice> slices;
    /** Phase totals across all nodes. */
    PhaseTotals totals;
    /** Phase totals per node (wire time on the receiving node's row). */
    std::map<std::string, PhaseTotals> perNode;

    sim::Duration latency() const { return end - begin; }
};

/** Analyzer knobs. */
struct CriticalPathParams
{
    /**
     * NIC interrupt latency: the controller share of a post-arrival
     * gap. Should match HostInterfaceParams::interruptLatency.
     */
    sim::Duration interruptLatency = sim::usec(2);
};

/** Walks recorded events into per-op critical paths. */
class CriticalPathAnalyzer
{
  public:
    explicit CriticalPathAnalyzer(const CriticalPathParams &params = {})
        : params_(params)
    {}

    /**
     * Analyze every completed async op in @p events (ops missing their
     * asyncEnd are skipped). Returned in begin-time order.
     */
    std::vector<OpCriticalPath> analyze(
        const std::vector<TraceEvent> &events) const;

    /** Aggregated view of many ops with the same name. */
    struct Summary
    {
        size_t count = 0;
        PhaseTotals totals;     /**< Summed across ops. */
        sim::Duration minLatency = 0;
        sim::Duration maxLatency = 0;
    };

    /** Group @p ops by name and sum their phases. */
    static std::map<std::string, Summary> summarize(
        const std::vector<OpCriticalPath> &ops);

    /**
     * Render a Table-2-style breakdown (one row per op name, mean
     * phase microseconds) for terminals.
     */
    static std::string renderText(const std::vector<OpCriticalPath> &ops);

    /** Machine-readable dump of per-op paths and the summary. */
    static std::string toJson(const std::vector<OpCriticalPath> &ops);

  private:
    CriticalPathParams params_;
};

} // namespace remora::obs
