/**
 * @file
 * The conventional cross-machine RPC baseline.
 *
 * Section 2 of the paper decomposes an RPC into data transfer plus six
 * control-transfer steps: (1) block the client thread and reschedule,
 * (2) process the request packet in the destination OS, (3) schedule,
 * dispatch and execute the server thread, (4) reschedule the server's
 * processor on return, (5) process the reply packet on the client, and
 * (6) schedule and resume the original client thread. RpcTransport
 * charges each step to the right CPU under the right accounting
 * category, on top of the *same* cell substrate the remote-memory model
 * uses, so a comparison between the two isolates exactly the cost of
 * unified data+control transfer.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "rmem/wire.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "util/status.h"

namespace remora::rpc {

/**
 * Control-transfer costs of the RPC thread model (§2's six steps).
 *
 * Calibrated to an Ultrix-class kernel RPC stack on a 25 MHz R3000 —
 * socket-layer packet processing plus full scheduler involvement on
 * both ends (the stack under the paper's instrumented NFS server), for
 * a null-call control overhead around a millisecond. Hybrid-1, by
 * contrast, pays only the tuned notification path (~260 us), which is
 * exactly why the paper uses it as the *strongest* RPC-like contender:
 * a conventional RPC fares worse than HY on every axis.
 */
struct ThreadModelCosts
{
    /** (1) Block the client thread, reschedule its processor. */
    sim::Duration clientBlock = sim::usec(110);
    /** (2) Request-packet protocol processing in the server OS. */
    sim::Duration serverPacket = sim::usec(160);
    /** (3) Schedule + dispatch the server thread. */
    sim::Duration serverDispatch = sim::usec(230);
    /** Stub/procedure invocation overhead around the handler body. */
    sim::Duration procInvoke = sim::usec(60);
    /** (4) Reschedule the server's processor on return. */
    sim::Duration serverReturn = sim::usec(110);
    /** (5) Reply-packet protocol processing on the client OS. */
    sim::Duration clientPacket = sim::usec(160);
    /** (6) Schedule and resume the original client thread. */
    sim::Duration clientResume = sim::usec(230);
};

/** Statistics of one transport endpoint. */
struct RpcStats
{
    sim::Counter callsIssued;
    sim::Counter callsServed;
    sim::Counter timeouts;
    sim::Counter badProc;
    /** Timed-out attempts re-sent with a fresh xid (same idemKey). */
    sim::Counter retries;
    /** Replies that arrived after their call had already timed out. */
    sim::Counter lateReplies;
    /** Requests answered from the dedup cache without re-execution. */
    sim::Counter dedupHits;
};

/** Request/response RPC endpoint bound to a node's Wire. */
class RpcTransport
{
  public:
    /**
     * A server procedure: consumes arguments, produces results. Runs as
     * a coroutine so it can await further I/O; its body should charge
     * kProcExec CPU itself.
     */
    using Handler = std::function<sim::Task<std::vector<uint8_t>>(
        net::NodeId src, std::vector<uint8_t> args)>;

    /**
     * @param wire The node's kernel wire (shared with the rmem engine).
     * @param costs Thread-model control-transfer costs.
     */
    RpcTransport(rmem::Wire &wire, const ThreadModelCosts &costs = {});

    RpcTransport(const RpcTransport &) = delete;
    RpcTransport &operator=(const RpcTransport &) = delete;

    /** Register the server procedure for @p proc. */
    void registerProc(uint32_t proc, Handler handler);

    /**
     * Call procedure @p proc on node @p dst.
     *
     * The returned task resolves with the result bytes after all six
     * control-transfer steps and both data transfers complete.
     *
     * @param dst Destination node.
     * @param proc Procedure number (must be registered there).
     * @param args Marshaled arguments.
     * @param timeout Zero = wait forever; otherwise resolve kTimeout.
     *        With maxRetries == 0 this keeps the seed's §3.7 semantics:
     *        no retransmission, a timeout means the peer is gone.
     * @param maxRetries Bounded retry budget for lossy clusters: each
     *        timed-out attempt is re-sent with a fresh xid and a shared
     *        idempotency key (the timeout doubling per attempt), so the
     *        server can collapse duplicates and replay the cached reply
     *        instead of re-executing the handler. At-most-once: after
     *        the budget is spent the call resolves kTimeout, and the
     *        handler has run at most one time.
     */
    sim::Task<util::Result<std::vector<uint8_t>>> call(
        net::NodeId dst, uint32_t proc, std::vector<uint8_t> args,
        sim::Duration timeout = 0, int maxRetries = 0);

    /** Counters. */
    const RpcStats &stats() const { return stats_; }

    /** Register "<prefix>.calls_issued", "<prefix>.retries" etc. */
    void registerStats(obs::MetricRegistry &reg,
                       const std::string &prefix) const;

  private:
    struct PendingCall
    {
        sim::Promise<util::Result<std::vector<uint8_t>>> done;
        sim::EventId timeoutEvent = 0;
        /** Async op of the call, closed when the client resumes. */
        uint64_t traceOp = 0;
    };

    /**
     * At-most-once record of one idempotency key. While the handler is
     * still running the entry pins only the freshest xid; once done it
     * caches the reply so retransmitted requests can be answered
     * without re-execution. Entries live for the run: forgetting a
     * completed key would let a very late duplicate re-run the handler.
     */
    struct DedupEntry
    {
        bool done = false;
        uint32_t latestXid = 0;
        std::vector<uint8_t> reply;
    };

    /** Wire delivery of RPC envelope messages. */
    void onMessage(net::NodeId src, rmem::Message &&msg);

    /** Server side: dedup, then run steps 2-4 and the handler. */
    sim::Task<void> serve(net::NodeId src, uint32_t xid, uint64_t idemKey,
                          std::vector<uint8_t> body);

    /** Client side: run steps 5-6 and resolve the caller. */
    void completeCall(uint32_t xid, std::vector<uint8_t> body);

    rmem::Wire &wire_;
    ThreadModelCosts costs_;
    std::unordered_map<uint32_t, Handler> procs_;
    std::unordered_map<uint32_t, PendingCall> pending_;
    std::unordered_map<uint64_t, DedupEntry> served_;
    uint32_t nextXid_ = 1;
    uint64_t nextIdemKey_ = 1;
    RpcStats stats_;
};

} // namespace remora::rpc
