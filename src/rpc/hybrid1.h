/**
 * @file
 * Hybrid-1: RPC-like request/response built on remote memory (§5.1).
 *
 * "Unlike the previous two schemes, which are pure data transfer
 * schemes, this scheme uses a single write request with notification,
 * followed by one or more return write requests." Hybrid-1 is the
 * paper's stand-in for a fast conventional RPC when comparing against
 * pure data transfer, and the HY bars of Figures 2 and 3 are built on
 * it:
 *
 *  - the client remote-writes a request record (args + reply-segment
 *    coordinates) into its slot of the server's request segment, with
 *    the notify bit set;
 *  - the server process, blocked on the segment's notification channel,
 *    wakes (control transfer!), runs the procedure, and remote-writes
 *    the results back into the client's reply segment;
 *  - the client spin-waits at user level on the reply sequence word.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rmem/engine.h"
#include "sim/task.h"
#include "util/status.h"

namespace remora::rpc {

/** Sizing/behaviour knobs for a Hybrid-1 endpoint pair. */
struct Hybrid1Params
{
    /** Bytes per client request slot in the server's request segment. */
    uint32_t slotBytes = 16384;
    /** Number of client slots. */
    uint32_t slots = 16;
    /** Client spin-wait poll interval for the reply word. */
    sim::Duration pollInterval = sim::usec(2);
};

/** Server half: owns the request segment and the dispatch loop. */
class Hybrid1Server
{
  public:
    /**
     * A served procedure. Runs as a coroutine; should charge kProcExec
     * for its body.
     */
    using Proc = std::function<sim::Task<std::vector<uint8_t>>(
        net::NodeId src, std::vector<uint8_t> args)>;

    /**
     * @param engine The server node's remote-memory engine.
     * @param serverProcess The server process (owns the segment memory).
     * @param params Sizing.
     */
    Hybrid1Server(rmem::RmemEngine &engine, mem::Process &serverProcess,
                  const Hybrid1Params &params = {});

    /** Install the procedure run for each request. */
    void setHandler(Proc proc) { proc_ = std::move(proc); }

    /** Start the dispatch loop (blocks on the notification channel). */
    void start();

    /**
     * Assign the next free client slot (setup-time rendezvous; the
     * paper's equivalent is binding to the service).
     */
    uint32_t allocSlot();

    /** Handle importers use to reach the request segment. */
    rmem::ImportedSegment requestSegmentHandle() const { return handle_; }

    /** Requests served. */
    uint64_t served() const { return served_; }

  private:
    /** The dispatch loop: wait, parse, run, reply. */
    sim::Task<void> serveLoop();

    /**
     * Serve one request from @p slot. @p traceOp is the async op of the
     * client write that carried the notification, so the serve-side
     * spans and the reply write join the caller's trace DAG.
     */
    sim::Task<void> serveOne(net::NodeId src, uint32_t slot,
                             uint64_t traceOp);

    rmem::RmemEngine &engine_;
    mem::Process &process_;
    Hybrid1Params params_;
    mem::Vaddr segBase_ = 0;
    rmem::SegmentId segId_ = 0;
    rmem::ImportedSegment handle_;
    Proc proc_;
    uint32_t nextSlot_ = 0;
    uint64_t served_ = 0;
    bool started_ = false;
};

/** Client half: writes requests, spin-waits for replies. */
class Hybrid1Client
{
  public:
    /**
     * @param engine The client node's remote-memory engine.
     * @param clientProcess The client-side process (clerk).
     * @param server Handle to the server's request segment.
     * @param slot Slot index assigned by Hybrid1Server::allocSlot().
     * @param params Must match the server's.
     */
    Hybrid1Client(rmem::RmemEngine &engine, mem::Process &clientProcess,
                  const rmem::ImportedSegment &server, uint32_t slot,
                  const Hybrid1Params &params = {});

    /**
     * Issue one call: request write (with notification), then spin-wait
     * for the reply record.
     *
     * @param args Argument bytes (must fit the slot minus header).
     * @param timeout Zero = wait forever.
     */
    sim::Task<util::Result<std::vector<uint8_t>>> call(
        std::vector<uint8_t> args, sim::Duration timeout = 0);

  private:
    rmem::RmemEngine &engine_;
    mem::Process &process_;
    rmem::ImportedSegment server_;
    uint32_t slot_;
    Hybrid1Params params_;
    mem::Vaddr replyBase_ = 0;
    rmem::SegmentId replySegId_ = 0;
    rmem::ImportedSegment replyHandle_;
    uint32_t seq_ = 0;
};

} // namespace remora::rpc
