#include "rpc/marshal.h"

namespace remora::rpc {

void
Marshal::putOpaque(std::span<const uint8_t> data)
{
    w_.putU32(static_cast<uint32_t>(data.size()));
    putFixed(data);
}

void
Marshal::putFixed(std::span<const uint8_t> data)
{
    w_.putBytes(data);
    size_t pad = (4 - (data.size() % 4)) % 4;
    w_.putZeros(pad);
}

std::vector<uint8_t>
Unmarshal::getOpaque()
{
    uint32_t len = getU32();
    return getFixed(len);
}

std::vector<uint8_t>
Unmarshal::getFixed(size_t len)
{
    auto view = r_.viewBytes(len);
    std::vector<uint8_t> out(view.begin(), view.end());
    r_.skip((4 - (len % 4)) % 4);
    return out;
}

} // namespace remora::rpc
