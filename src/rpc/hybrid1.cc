#include "rpc/hybrid1.h"

#include <algorithm>
#include <optional>

#include "obs/trace.h"
#include "rmem/race_detector.h"
#include "util/bytes.h"
#include "util/panic.h"

namespace remora::rpc {

namespace {

/** Bytes of the request record header: seq, argLen, reply coordinates. */
constexpr uint32_t kReqHeader = 16;
/** Bytes of the reply record header: seq, status, length. */
constexpr uint32_t kRespHeader = 12;

} // namespace

// ----------------------------------------------------------------------
// Server
// ----------------------------------------------------------------------

Hybrid1Server::Hybrid1Server(rmem::RmemEngine &engine,
                             mem::Process &serverProcess,
                             const Hybrid1Params &params)
    : engine_(engine), process_(serverProcess), params_(params)
{
    uint32_t segBytes = params_.slotBytes * params_.slots;
    segBase_ = process_.space().allocRegion(segBytes);
    auto exported = engine_.exportSegment(
        process_, segBase_, segBytes,
        rmem::Rights::kWrite | rmem::Rights::kRead,
        rmem::NotifyPolicy::kConditional, "hybrid1.requests");
    if (!exported.ok()) {
        REMORA_FATAL("hybrid1: cannot export request segment: " +
                     exported.status().toString());
    }
    handle_ = exported.value();
    segId_ = handle_.descriptor;
}

uint32_t
Hybrid1Server::allocSlot()
{
    if (nextSlot_ >= params_.slots) {
        REMORA_FATAL("hybrid1: out of client slots");
    }
    return nextSlot_++;
}

void
Hybrid1Server::start()
{
    REMORA_ASSERT(!started_);
    REMORA_ASSERT(proc_ != nullptr);
    started_ = true;
    serveLoop().detach();
}

sim::Task<void>
Hybrid1Server::serveLoop()
{
    rmem::NotificationChannel *ch = engine_.channel(segId_);
    REMORA_ASSERT(ch != nullptr);
    // The loop parks here forever between requests by design; tell the
    // wait graph so quiescence reporting doesn't flag it as blocked.
    ch->markDaemon();
    for (;;) {
        // Control transfer: the blocked server thread is woken for each
        // notified request (the cost HY pays and DX avoids).
        rmem::Notification n = co_await ch->next();
        uint32_t slot = n.offset / params_.slotBytes;
        if (slot >= params_.slots) {
            continue; // stray write outside any slot
        }
        co_await serveOne(n.srcNode, slot, n.traceOp);
    }
}

sim::Task<void>
Hybrid1Server::serveOne(net::NodeId src, uint32_t slot, uint64_t traceOp)
{
    // Explicit span: the coroutine suspends across the procedure body.
    obs::SpanId span = obs::kNoSpan;
    if (obs::TraceRecorder::on()) {
        span = obs::TraceRecorder::instance().beginSpanFor(
            traceOp, engine_.node().name(), "rpc", "serve_one",
            "slot=" + std::to_string(slot) + " from=" + std::to_string(src));
    }
    auto &cpu = engine_.node().cpu();
    mem::Vaddr slotVa = segBase_ + slot * params_.slotBytes;

    // Parse the request record out of the segment memory.
    std::vector<uint8_t> header(kReqHeader);
    util::Status rs = process_.space().read(slotVa, header);
    REMORA_ASSERT(rs.ok());
    util::ByteReader r(header);
    uint32_t seq = r.getU32();
    uint32_t argLen = r.getU32();
    uint8_t replyDesc = r.getU8();
    r.skip(1);
    uint16_t replyGen = r.getU16();
    uint32_t replySize = r.getU32();

    if (kReqHeader + argLen > params_.slotBytes) {
        obs::TraceRecorder::instance().endSpan(span);
        co_return; // malformed request; nothing sane to reply to
    }
    std::vector<uint8_t> args(argLen);
    rs = process_.space().read(slotVa + kReqHeader, args);
    REMORA_ASSERT(rs.ok());

    // Procedure invocation overhead (stub dispatch).
    co_await cpu.use(engine_.costs().copyCost(kReqHeader + argLen) +
                         sim::usec(25),
                     sim::CpuCategory::kProcInvoke);

    std::vector<uint8_t> results = co_await proc_(src, std::move(args));
    ++served_;

    // Return write(s): pure data transfer back to the client's reply
    // segment; the client spin-waits, so no notify bit.
    rmem::ImportedSegment reply;
    reply.node = src;
    reply.descriptor = replyDesc;
    reply.generation = replyGen;
    reply.size = replySize;
    reply.rights = rmem::Rights::kWrite;

    util::ByteWriter w(kRespHeader);
    w.putU32(seq);
    w.putU32(0); // status ok
    w.putU32(static_cast<uint32_t>(results.size()));
    // Scatter the return as ONE vectored WRITE: the result bytes land
    // at their final offset and the header lands at 0, in that order —
    // the serving CPU's FIFO keeps the seq word (the reply's release
    // point) last, so the client's spin-read never acquires a header
    // over missing result bytes. No marshal into a contiguous staging
    // buffer, and both stores ride one frame and one server trap.
    std::vector<rmem::BatchBuilder::Write> subs;
    if (!results.empty()) {
        subs.push_back(rmem::BatchBuilder::Write{
            reply, kRespHeader, std::move(results), false});
    }
    subs.push_back(rmem::BatchBuilder::Write{reply, 0, w.take(), false});
    // engine_.writev starts eagerly, so its asyncBegin runs while the
    // scope is live and records this request's op as its parent; the
    // scope is dropped before suspending on the result.
    std::optional<obs::OpScope> parentScope;
    parentScope.emplace(traceOp);
    auto writeTask = engine_.writev(std::move(subs));
    parentScope.reset();
    util::Status ws = co_await writeTask;
    REMORA_ASSERT(ws.ok());
    obs::TraceRecorder::instance().endSpan(span);
}

// ----------------------------------------------------------------------
// Client
// ----------------------------------------------------------------------

Hybrid1Client::Hybrid1Client(rmem::RmemEngine &engine,
                             mem::Process &clientProcess,
                             const rmem::ImportedSegment &server,
                             uint32_t slot, const Hybrid1Params &params)
    : engine_(engine), process_(clientProcess), server_(server), slot_(slot),
      params_(params)
{
    uint32_t replyBytes = params_.slotBytes;
    replyBase_ = process_.space().allocRegion(replyBytes);
    auto exported = engine_.exportSegment(
        process_, replyBase_, replyBytes, rmem::Rights::kWrite,
        rmem::NotifyPolicy::kNever, "hybrid1.reply");
    if (!exported.ok()) {
        REMORA_FATAL("hybrid1: cannot export reply segment: " +
                     exported.status().toString());
    }
    replyHandle_ = exported.value();
    replySegId_ = replyHandle_.descriptor;
    if (rmem::RaceDetector::on()) {
        // The reply sequence word is the synchronization point of the
        // Hybrid-1 reply path: the server's single reply write covers
        // it last-in-buffer (release), and the client's spin-read of
        // it acquires — ordering the header/result bytes it guards.
        rmem::RaceDetector::instance().markSyncWord(replyHandle_.node,
                                                    replyHandle_.descriptor,
                                                    0);
    }
}

sim::Task<util::Result<std::vector<uint8_t>>>
Hybrid1Client::call(std::vector<uint8_t> args, sim::Duration timeout)
{
    REMORA_ASSERT(kReqHeader + args.size() <= params_.slotBytes);
    uint32_t seq = ++seq_;
    // Async op for the whole call (request write, server work, reply
    // write, spin-wait): runs eagerly here, so the caller's ambient
    // scope becomes the parent.
    uint64_t opId = 0;
    obs::SpanId span = obs::kNoSpan;
    if (obs::TraceRecorder::on()) {
        auto &rec = obs::TraceRecorder::instance();
        opId = rec.newAsyncId();
        rec.asyncBegin(opId, engine_.node().name(), "rpc", "hy_call",
                       "seq=" + std::to_string(seq));
        span = rec.beginSpanFor(
            opId, engine_.node().name(), "rpc", "call",
            "args=" + std::to_string(args.size()) + " seq=" +
                std::to_string(seq));
    }

    util::ByteWriter w(kReqHeader + args.size());
    w.putU32(seq);
    w.putU32(static_cast<uint32_t>(args.size()));
    w.putU8(replyHandle_.descriptor);
    w.putU8(0);
    w.putU16(replyHandle_.generation);
    w.putU32(replyHandle_.size);
    w.putBytes(args);

    // The single write request, with notification: this is the one
    // control transfer Hybrid-1 performs. Started under the call op's
    // scope so the write becomes its child in the DAG.
    std::optional<obs::OpScope> parentScope;
    parentScope.emplace(opId);
    auto writeTask = engine_.write(
        server_, slot_ * params_.slotBytes, w.take(), true);
    parentScope.reset();
    util::Status ws = co_await writeTask;
    if (!ws.ok()) {
        auto &rec = obs::TraceRecorder::instance();
        rec.endSpan(span);
        if (opId != 0) {
            rec.asyncEnd(opId, engine_.node().name(), "rpc", "hy_call");
        }
        co_return ws;
    }

    // Spin-wait at user level on the reply sequence word (§4.3), with a
    // gentle backoff so the simulation stays event-efficient.
    auto &sim = engine_.node().simulator();
    sim::Time deadline =
        timeout > 0 ? sim.now() + timeout : sim::kTimeMax;
    sim::Duration poll = params_.pollInterval;
    for (;;) {
        auto word = process_.space().readWord(replyBase_);
        REMORA_ASSERT(word.ok());
        if (word.value() == seq) {
            break;
        }
        if (sim.now() >= deadline) {
            auto &rec = obs::TraceRecorder::instance();
            rec.endSpan(span);
            if (opId != 0) {
                rec.asyncEnd(opId, engine_.node().name(), "rpc", "hy_call",
                             "timeout");
            }
            co_return util::Status(util::ErrorCode::kTimeout,
                                   "hybrid1 reply timed out");
        }
        co_await sim::delay(sim, poll);
        poll = std::min<sim::Duration>(poll * 2, params_.pollInterval * 16);
    }

    std::vector<uint8_t> header(kRespHeader);
    util::Status rs = process_.space().read(replyBase_, header);
    REMORA_ASSERT(rs.ok());
    util::ByteReader r(header);
    r.skip(4); // seq already checked
    uint32_t status = r.getU32();
    uint32_t len = r.getU32();
    if (status != 0) {
        auto &rec = obs::TraceRecorder::instance();
        rec.endSpan(span);
        if (opId != 0) {
            rec.asyncEnd(opId, engine_.node().name(), "rpc", "hy_call",
                         "remote failure");
        }
        co_return util::Status(util::ErrorCode::kInternal,
                               "hybrid1 remote failure");
    }
    std::vector<uint8_t> data(len);
    rs = process_.space().read(replyBase_ + kRespHeader, data);
    REMORA_ASSERT(rs.ok());
    {
        auto &rec = obs::TraceRecorder::instance();
        rec.endSpan(span);
        if (opId != 0) {
            rec.asyncEnd(opId, engine_.node().name(), "rpc", "hy_call");
        }
    }
    co_return data;
}

} // namespace remora::rpc
