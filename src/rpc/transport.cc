#include "rpc/transport.h"

#include <utility>

#include "obs/trace.h"
#include "rpc/marshal.h"
#include "sim/logger.h"
#include "util/panic.h"

namespace remora::rpc {

namespace {

/** Response status octet values. */
constexpr uint8_t kStatusOk = 0;
constexpr uint8_t kStatusBadProc = 1;

} // namespace

RpcTransport::RpcTransport(rmem::Wire &wire, const ThreadModelCosts &costs)
    : wire_(wire), costs_(costs)
{
    wire_.setRpcHandler([this](net::NodeId src, rmem::Message &&msg) {
        onMessage(src, std::move(msg));
    });
}

void
RpcTransport::registerProc(uint32_t proc, Handler handler)
{
    procs_[proc] = std::move(handler);
}

sim::Task<util::Result<std::vector<uint8_t>>>
RpcTransport::call(net::NodeId dst, uint32_t proc, std::vector<uint8_t> args,
                   sim::Duration timeout, int maxRetries)
{
    stats_.callsIssued.inc();
    auto &cpu = wire_.node().cpu();
    auto &sim = wire_.node().simulator();
    sim.noteDigest("rpc.call", static_cast<uint64_t>(dst) << 32 | proc);

    // Runs eagerly at call time, so asyncBegin sees the caller's
    // ambient OpScope and records it as this op's parent.
    uint64_t opId = 0;
    if (obs::TraceRecorder::on()) {
        auto &rec = obs::TraceRecorder::instance();
        opId = rec.newAsyncId();
        rec.asyncBegin(opId, wire_.node().name(), "rpc", "call",
                       "proc=" + std::to_string(proc) + " dst=" +
                           std::to_string(dst));
    }

    // Step 1: block the client thread and reschedule its processor.
    // Paid once — the thread stays blocked across retransmissions.
    obs::SpanId blockSpan = obs::kNoSpan;
    if (opId != 0) {
        blockSpan = obs::TraceRecorder::instance().beginSpanFor(
            opId, wire_.node().name(), "rpc", "client_block");
    }
    co_await cpu.use(costs_.clientBlock, sim::CpuCategory::kControlTransfer);
    obs::TraceRecorder::instance().endSpan(blockSpan);

    // Marshal the request body once: every attempt sends it verbatim.
    Marshal m;
    m.putU32(proc);
    m.putOpaque(args);
    std::vector<uint8_t> body = m.take();

    // A retryable call carries a cluster-unique idempotency key so the
    // server can collapse duplicate attempts into one execution.
    uint64_t idemKey = 0;
    if (maxRetries > 0) {
        idemKey = static_cast<uint64_t>(wire_.node().id()) << 32 |
                  nextIdemKey_++;
    }

    sim::Duration curTimeout = timeout;
    util::Result<std::vector<uint8_t>> result =
        util::Status(util::ErrorCode::kTimeout, "RPC timed out");
    for (int attempt = 0;; ++attempt) {
        uint32_t xid = nextXid_++;
        auto [it, inserted] = pending_.try_emplace(
            xid,
            PendingCall{sim::Promise<util::Result<std::vector<uint8_t>>>(sim),
                        0, opId});
        REMORA_ASSERT(inserted);
        auto fut = it->second.done.future();
        if (curTimeout > 0) {
            it->second.timeoutEvent = sim.schedule(curTimeout, [this, xid] {
                auto pit = pending_.find(xid);
                if (pit == pending_.end()) {
                    return;
                }
                PendingCall p = std::move(pit->second);
                pending_.erase(pit);
                stats_.timeouts.inc();
                p.done.set(util::Status(util::ErrorCode::kTimeout,
                                        "RPC timed out"));
            });
        }

        rmem::RpcMsg msg;
        msg.xid = xid;
        msg.isResponse = false;
        msg.idemKey = idemKey;
        msg.body = body;
        wire_.send(dst, rmem::Message(std::move(msg)),
                   sim::CpuCategory::kDataReply, opId);

        result = co_await fut;
        if (result.ok() || attempt >= maxRetries ||
            result.status().code() != util::ErrorCode::kTimeout) {
            break;
        }

        // Re-send with a fresh xid (the doubled timeout distinguishes a
        // slow cluster from a dead peer); the old xid's reply, if it
        // ever shows up, is counted as late and dropped.
        stats_.retries.inc();
        sim.noteDigest("rpc.retry", static_cast<uint64_t>(dst) << 32 | xid);
        if (opId != 0) {
            obs::TraceRecorder::instance().instantFor(
                opId, wire_.node().name(), "rpc", "retry",
                "attempt=" + std::to_string(attempt + 2));
        }
        curTimeout *= 2;
    }
    co_return result;
}

void
RpcTransport::onMessage(net::NodeId src, rmem::Message &&msg)
{
    auto &rpc = std::get<rmem::RpcMsg>(msg);
    if (rpc.isResponse) {
        completeCall(rpc.xid, std::move(rpc.body));
    } else {
        serve(src, rpc.xid, rpc.idemKey, std::move(rpc.body)).detach();
    }
}

sim::Task<void>
RpcTransport::serve(net::NodeId src, uint32_t xid, uint64_t idemKey,
                    std::vector<uint8_t> body)
{
    stats_.callsServed.inc();
    auto &cpu = wire_.node().cpu();

    // At-most-once: a request bearing a known idempotency key must not
    // re-run the handler, no matter how many duplicate attempts arrive.
    if (idemKey != 0) {
        auto dit = served_.find(idemKey);
        if (dit != served_.end()) {
            stats_.dedupHits.inc();
            wire_.node().simulator().noteDigest("rpc.dedup", idemKey);
            if (!dit->second.done) {
                // Handler still running from an earlier attempt: pin
                // the freshest xid so the eventual reply resolves the
                // attempt the client is actually waiting on.
                dit->second.latestXid = xid;
                co_return;
            }
            // Replay the cached reply. Charge packet processing and the
            // return path, but no dispatch or handler execution.
            std::vector<uint8_t> cached = dit->second.reply;
            co_await cpu.use(costs_.serverPacket + costs_.serverReturn +
                                 2 * wire_.costs().copyCost(cached.size()),
                             sim::CpuCategory::kControlTransfer);
            rmem::RpcMsg replay;
            replay.xid = xid;
            replay.isResponse = true;
            replay.body = std::move(cached);
            wire_.send(src, rmem::Message(std::move(replay)),
                       sim::CpuCategory::kDataReply);
            co_return;
        }
        served_.try_emplace(idemKey, DedupEntry{false, xid, {}});
    }

    // Body runs eagerly under route()'s OpScope; capture the op now,
    // before the first suspension loses the ambient context.
    uint64_t op = obs::TraceRecorder::currentOp();
    obs::SpanId serveSpan = obs::kNoSpan;
    if (obs::TraceRecorder::on() && op != 0) {
        serveSpan = obs::TraceRecorder::instance().beginSpanFor(
            op, wire_.node().name(), "rpc", "serve",
            "xid=" + std::to_string(xid));
    }

    // Step 2: request-packet processing in the destination OS. The
    // kernel socket path copies the payload twice (mbuf chain, then
    // into the server's address space) — the "sometimes repeated
    // copying of data between the client or server memory and the
    // network" of §2.
    co_await cpu.use(costs_.serverPacket +
                         2 * wire_.costs().copyCost(body.size()),
                     sim::CpuCategory::kControlTransfer);
    // Step 3: schedule, dispatch, and execute the server thread.
    co_await cpu.use(costs_.serverDispatch,
                     sim::CpuCategory::kControlTransfer);

    Unmarshal u(body);
    uint32_t proc = u.getU32();
    std::vector<uint8_t> args = u.getOpaque();

    Marshal reply;
    auto it = procs_.find(proc);
    if (it == procs_.end() || !u.ok()) {
        stats_.badProc.inc();
        reply.putU32(kStatusBadProc);
        reply.putOpaque({});
    } else {
        // Copy the handler out of procs_ before suspending: a
        // registerProc() during the awaited dispatch cost can rehash
        // the map and invalidate the iterator.
        Handler handler = it->second;
        // Stub invocation overhead around the handler body.
        co_await cpu.use(costs_.procInvoke, sim::CpuCategory::kProcInvoke);
        std::vector<uint8_t> results =
            co_await handler(src, std::move(args));
        reply.putU32(kStatusOk);
        reply.putOpaque(results);
    }

    rmem::RpcMsg msg;
    msg.xid = xid;
    msg.isResponse = true;
    msg.body = reply.take();

    // Cache the reply and answer the freshest attempt: duplicates that
    // raced in while the handler ran updated latestXid above. Re-find
    // the entry — the map may have rehashed during the suspensions.
    if (idemKey != 0) {
        auto dit = served_.find(idemKey);
        REMORA_ASSERT(dit != served_.end());
        dit->second.done = true;
        dit->second.reply = msg.body;
        msg.xid = dit->second.latestXid;
    }

    // Step 4: reschedule the server's processor on return, plus the
    // socket-layer copies of the reply on the way out.
    co_await cpu.use(costs_.serverReturn +
                         2 * wire_.costs().copyCost(msg.body.size()),
                     sim::CpuCategory::kControlTransfer);
    obs::TraceRecorder::instance().endSpan(serveSpan);
    wire_.send(src, rmem::Message(std::move(msg)),
               sim::CpuCategory::kDataReply, op);
}

void
RpcTransport::completeCall(uint32_t xid, std::vector<uint8_t> body)
{
    auto it = pending_.find(xid);
    if (it == pending_.end()) {
        // The call already timed out (and possibly retried under a
        // fresh xid); count the drop instead of hiding it.
        stats_.lateReplies.inc();
        wire_.node().simulator().noteDigest("rpc.late_reply", xid);
        if (obs::TraceRecorder::on()) {
            obs::TraceRecorder::instance().instant(
                wire_.node().name(), "rpc", "late_reply",
                "xid=" + std::to_string(xid));
        }
        return;
    }
    PendingCall p = std::move(it->second);
    pending_.erase(it);
    if (p.timeoutEvent != 0) {
        wire_.node().simulator().cancel(p.timeoutEvent);
    }

    // Steps 5 + 6: reply-packet processing, then schedule and resume
    // the original client thread.
    auto &cpu = wire_.node().cpu();
    obs::SpanId resumeSpan = obs::kNoSpan;
    if (obs::TraceRecorder::on() && p.traceOp != 0) {
        resumeSpan = obs::TraceRecorder::instance().beginSpanFor(
            p.traceOp, wire_.node().name(), "rpc", "client_resume");
    }
    std::string nodeName = wire_.node().name();
    cpu.post(costs_.clientPacket + costs_.clientResume,
             sim::CpuCategory::kControlTransfer,
             [p = std::move(p), body = std::move(body), resumeSpan,
              nodeName = std::move(nodeName)]() mutable {
                 auto &rec = obs::TraceRecorder::instance();
                 rec.endSpan(resumeSpan);
                 if (p.traceOp != 0) {
                     rec.asyncEnd(p.traceOp, nodeName, "rpc", "call");
                 }
                 Unmarshal u(body);
                 uint32_t status = u.getU32();
                 std::vector<uint8_t> results = u.getOpaque();
                 if (status != kStatusOk || !u.ok()) {
                     p.done.set(util::Status(util::ErrorCode::kInternal,
                                             "RPC failed remotely"));
                 } else {
                     p.done.set(std::move(results));
                 }
             });
}

void
RpcTransport::registerStats(obs::MetricRegistry &reg,
                            const std::string &prefix) const
{
    reg.add(prefix + ".calls_issued", stats_.callsIssued);
    reg.add(prefix + ".calls_served", stats_.callsServed);
    reg.add(prefix + ".timeouts", stats_.timeouts);
    reg.add(prefix + ".bad_proc", stats_.badProc);
    reg.add(prefix + ".retries", stats_.retries);
    reg.add(prefix + ".late_replies", stats_.lateReplies);
    reg.add(prefix + ".dedup_hits", stats_.dedupHits);
}

} // namespace remora::rpc
