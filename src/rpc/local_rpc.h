/**
 * @file
 * Local (same-machine, cross-address-space) RPC cost model.
 *
 * In the paper's structure, clients never cross the machine boundary:
 * they talk to their server clerk through local RPC, whose protection
 * firewalls survive ("control transfers are primarily intra-node
 * cross-domain calls, which have been shown to be amenable to
 * high-performance implementation", citing LRPC and L3/L4). We model a
 * local call as two cross-domain transitions with a calibrated cost
 * each; the actual procedure body is the caller's coroutine.
 */
#pragma once

#include "sim/cpu.h"
#include "sim/task.h"
#include "sim/time.h"

namespace remora::rpc {

/** Costs of one local cross-domain call. */
struct LocalRpcCosts
{
    /** Caller domain -> callee domain transition (trap, stack switch). */
    sim::Duration callPath = sim::usec(60);
    /** Callee -> caller return transition. */
    sim::Duration returnPath = sim::usec(60);
};

/** A local RPC binding between two domains on one node. */
class LocalRpc
{
  public:
    /**
     * @param cpu The node's CPU.
     * @param costs Transition costs.
     */
    explicit LocalRpc(sim::CpuResource &cpu, const LocalRpcCosts &costs = {})
        : cpu_(cpu), costs_(costs)
    {}

    /**
     * Cross into the callee's domain. Await before running the callee's
     * body; pair with returnToCaller() after it.
     */
    sim::Task<void>
    enterCallee()
    {
        return cpu_.use(costs_.callPath, sim::CpuCategory::kProcInvoke);
    }

    /** Cross back into the caller's domain. */
    sim::Task<void>
    returnToCaller()
    {
        return cpu_.use(costs_.returnPath, sim::CpuCategory::kProcInvoke);
    }

    /** Round-trip transition cost (no body). */
    sim::Duration
    roundTripCost() const
    {
        return costs_.callPath + costs_.returnPath;
    }

  private:
    sim::CpuResource &cpu_;
    LocalRpcCosts costs_;
};

} // namespace remora::rpc
