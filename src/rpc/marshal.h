/**
 * @file
 * XDR-style argument marshaling for the RPC baseline.
 *
 * Everything is encoded in 4-byte-aligned units, the way ONC RPC stubs
 * did; the padding and length words this adds are exactly the
 * "marshaling overheads imposed by the RPC system" that Table 1b counts
 * as control traffic, so the traffic classifier reads sizes off these
 * encoders.
 */
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace remora::rpc {

/** Encoder producing XDR-aligned wire bytes. */
class Marshal
{
  public:
    Marshal() = default;

    /** Append a 32-bit unsigned integer. */
    void putU32(uint32_t v) { w_.putU32(v); }

    /** Append a 64-bit unsigned integer (as two XDR words). */
    void putU64(uint64_t v) { w_.putU64(v); }

    /** Append a 32-bit signed integer. */
    void putI32(int32_t v) { w_.putU32(static_cast<uint32_t>(v)); }

    /** Append a boolean as an XDR word. */
    void putBool(bool v) { w_.putU32(v ? 1 : 0); }

    /** Append a length-prefixed string, padded to 4 bytes. */
    void putString(const std::string &s) { w_.putString(s); }

    /** Append length-prefixed opaque bytes, padded to 4 bytes. */
    void putOpaque(std::span<const uint8_t> data);

    /** Append fixed-length opaque bytes, padded to 4 bytes. */
    void putFixed(std::span<const uint8_t> data);

    /** Bytes encoded so far. */
    size_t size() const { return w_.size(); }

    /** Take the encoded buffer. */
    std::vector<uint8_t> take() { return w_.take(); }

  private:
    util::ByteWriter w_;
};

/** Decoder over XDR-aligned wire bytes. */
class Unmarshal
{
  public:
    /** Decode from @p data, which must outlive the decoder. */
    explicit Unmarshal(std::span<const uint8_t> data) : r_(data) {}

    /** Decode a 32-bit unsigned integer. */
    uint32_t getU32() { return r_.getU32(); }

    /** Decode a 64-bit unsigned integer. */
    uint64_t getU64() { return r_.getU64(); }

    /** Decode a 32-bit signed integer. */
    int32_t getI32() { return static_cast<int32_t>(r_.getU32()); }

    /** Decode a boolean. */
    bool getBool() { return r_.getU32() != 0; }

    /** Decode a length-prefixed string. */
    std::string getString() { return r_.getString(); }

    /** Decode length-prefixed opaque bytes. */
    std::vector<uint8_t> getOpaque();

    /** Decode fixed-length opaque bytes. */
    std::vector<uint8_t> getFixed(size_t len);

    /** True while all decodes stayed in bounds. */
    bool ok() const { return r_.ok(); }

    /** Bytes not yet consumed. */
    size_t remaining() const { return r_.remaining(); }

  private:
    util::ByteReader r_;
};

} // namespace remora::rpc
