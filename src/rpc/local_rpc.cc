#include "rpc/local_rpc.h"

// LocalRpc is header-only today; this translation unit anchors the
// library target and reserves room for richer domain modeling.
