#include "mem/phys_mem.h"

#include <cstring>

#include "util/panic.h"

namespace remora::mem {

PhysMem::PhysMem(size_t maxFrames) : maxFrames_(maxFrames)
{
    REMORA_ASSERT(maxFrames > 0);
}

Frame
PhysMem::allocFrame()
{
    if (!freeList_.empty()) {
        Frame f = freeList_.back();
        freeList_.pop_back();
        std::memset(frames_[f].get(), 0, kPageBytes);
        ++framesInUse_;
        return f;
    }
    if (frames_.size() >= maxFrames_) {
        REMORA_FATAL("physical memory exhausted (" +
                     std::to_string(maxFrames_) + " frames)");
    }
    frames_.push_back(std::make_unique<uint8_t[]>(kPageBytes));
    ++framesInUse_;
    return static_cast<Frame>(frames_.size() - 1);
}

void
PhysMem::freeFrame(Frame f)
{
    REMORA_ASSERT(f < frames_.size());
    freeList_.push_back(f);
    REMORA_ASSERT(framesInUse_ > 0);
    --framesInUse_;
}

std::span<uint8_t>
PhysMem::frameData(Frame f)
{
    REMORA_ASSERT(f < frames_.size());
    return {frames_[f].get(), kPageBytes};
}

std::span<const uint8_t>
PhysMem::frameData(Frame f) const
{
    REMORA_ASSERT(f < frames_.size());
    return {frames_[f].get(), kPageBytes};
}

} // namespace remora::mem
