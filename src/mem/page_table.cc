#include "mem/page_table.h"

#include "util/panic.h"

namespace remora::mem {

namespace {

constexpr size_t
dirIndex(Vaddr va)
{
    return (va >> 22) & 0x3ff;
}

constexpr size_t
leafIndex(Vaddr va)
{
    return (va >> 12) & 0x3ff;
}

} // namespace

void
PageTable::map(Vaddr va, Frame frame, bool writable)
{
    REMORA_ASSERT(va < kVaLimit);
    auto &leaf = dir_[dirIndex(va)];
    if (!leaf) {
        leaf = std::make_unique<Leaf>();
    }
    Pte &pte = (*leaf)[leafIndex(va)];
    REMORA_ASSERT(!pte.valid);
    pte = Pte{frame, true, writable, false};
    ++mapped_;
}

void
PageTable::unmap(Vaddr va)
{
    REMORA_ASSERT(va < kVaLimit);
    auto &leaf = dir_[dirIndex(va)];
    if (!leaf) {
        return;
    }
    Pte &pte = (*leaf)[leafIndex(va)];
    if (pte.valid) {
        pte = Pte{};
        REMORA_ASSERT(mapped_ > 0);
        --mapped_;
    }
}

Pte *
PageTable::lookup(Vaddr va)
{
    if (va >= kVaLimit) {
        return nullptr;
    }
    auto &leaf = dir_[dirIndex(va)];
    if (!leaf) {
        return nullptr;
    }
    Pte &pte = (*leaf)[leafIndex(va)];
    return pte.valid ? &pte : nullptr;
}

const Pte *
PageTable::lookup(Vaddr va) const
{
    return const_cast<PageTable *>(this)->lookup(va);
}

} // namespace remora::mem
