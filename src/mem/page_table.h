/**
 * @file
 * Two-level page table for a 32-bit virtual address space.
 *
 * The remote-memory kernel emulation reads these tables to translate
 * segment offsets into physical frames ("The co-processor reads the
 * address translation tables for that process and writes the data to
 * memory", §3.1.1). Layout matches an R3000-era software-walked table:
 * 10-bit directory index, 10-bit table index, 12-bit page offset.
 */
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "mem/phys_mem.h"

namespace remora::mem {

/** Virtual address within one process (32-bit usable range). */
using Vaddr = uint64_t;

/** One page-table entry. */
struct Pte
{
    Frame frame = 0;
    bool valid = false;
    bool writable = false;
    /** Pinned pages may be targeted by remote DMA-style access. */
    bool pinned = false;
};

/** Software-walked two-level page table. */
class PageTable
{
  public:
    /** Entries per directory / per leaf table (10 bits each). */
    static constexpr size_t kEntries = 1024;
    /** Highest mappable virtual address + 1 (32-bit space). */
    static constexpr Vaddr kVaLimit = Vaddr{kEntries} * kEntries * kPageBytes;

    /**
     * Install a mapping for the page containing @p va.
     *
     * @param va Any address inside the page (page-aligned internally).
     * @param frame Backing physical frame.
     * @param writable Whether stores are permitted.
     */
    void map(Vaddr va, Frame frame, bool writable);

    /** Remove the mapping for the page containing @p va, if any. */
    void unmap(Vaddr va);

    /**
     * Look up the PTE for @p va.
     *
     * @return Pointer to the live PTE, or nullptr when unmapped. The
     *         pointer is invalidated by map/unmap of the same page.
     */
    Pte *lookup(Vaddr va);

    /** Const lookup. */
    const Pte *lookup(Vaddr va) const;

    /** Number of valid mappings. */
    size_t mappedPages() const { return mapped_; }

  private:
    using Leaf = std::array<Pte, kEntries>;
    std::array<std::unique_ptr<Leaf>, kEntries> dir_{};
    size_t mapped_ = 0;
};

} // namespace remora::mem
