/**
 * @file
 * A workstation node: one CPU, physical memory, a network adapter, and
 * a set of processes.
 *
 * The kernel-emulation layer (rmem::RmemEngine) attaches to a Node after
 * construction; Node itself stays independent of the remote-memory
 * protocol so the substrate can be reused by other communication models
 * (the RPC baseline runs over the very same nodes).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/address_space.h"
#include "mem/phys_mem.h"
#include "net/host_interface.h"
#include "obs/metrics.h"
#include "sim/cpu.h"
#include "sim/simulator.h"

namespace remora::mem {

/** Process identifier, unique within a node. */
using Pid = uint32_t;

/** A user process: a named address space. */
class Process
{
  public:
    /**
     * @param pid Node-unique id.
     * @param name Diagnostic name.
     * @param phys The node's physical memory.
     */
    Process(Pid pid, std::string name, PhysMem &phys)
        : pid_(pid), name_(std::move(name)), space_(phys)
    {}

    /** Node-unique process id. */
    Pid pid() const { return pid_; }

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

    /** The process's virtual memory. */
    AddressSpace &space() { return space_; }

    /** Const access to the process's virtual memory. */
    const AddressSpace &space() const { return space_; }

  private:
    Pid pid_;
    std::string name_;
    AddressSpace space_;
};

/** Configuration for a node. */
struct NodeParams
{
    /** Physical memory size in frames. */
    size_t memFrames = 16384;
    /** Network adapter parameters. */
    net::HostInterfaceParams nic;
};

/** One workstation in the cluster. */
class Node
{
  public:
    /**
     * @param simulator Owning simulator.
     * @param id Cluster-unique address (also the NIC's cell address).
     * @param name Diagnostic name, e.g. "server".
     * @param params Sizing.
     */
    Node(sim::Simulator &simulator, net::NodeId id, std::string name,
         const NodeParams &params = {});

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    /** Create a process on this node. */
    Process &spawnProcess(const std::string &name);

    /** Look up a process by pid; nullptr when absent. */
    Process *findProcess(Pid pid);

    /** Cluster-unique node id. */
    net::NodeId id() const { return id_; }

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

    /** The node's single CPU. */
    sim::CpuResource &cpu() { return cpu_; }

    /** The node's network adapter. */
    net::HostInterface &nic() { return nic_; }

    /** The node's physical memory. */
    PhysMem &memory() { return mem_; }

    /** Owning simulator. */
    sim::Simulator &simulator() { return sim_; }

    /**
     * Register this node's CPU busy-time gauges (per category, in
     * microseconds) and NIC counters under "<prefix>.cpu" / "<prefix>.nic".
     */
    void registerStats(obs::MetricRegistry &reg,
                       const std::string &prefix) const;

  private:
    sim::Simulator &sim_;
    net::NodeId id_;
    std::string name_;
    PhysMem mem_;
    sim::CpuResource cpu_;
    net::HostInterface nic_;
    Pid nextPid_ = 1;
    std::vector<std::unique_ptr<Process>> processes_;
};

} // namespace remora::mem
