/**
 * @file
 * Per-node physical memory: a frame allocator over a byte store.
 *
 * Frames are allocated lazily (a node only pays for pages actually
 * mapped), matching a DECstation-era machine with tens of megabytes.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace remora::mem {

/** Bytes per page/frame (DECstation R3000: 4 KB). */
inline constexpr size_t kPageBytes = 4096;

/** Physical frame number. */
using Frame = uint32_t;

/** Frame allocator and backing store for one node. */
class PhysMem
{
  public:
    /**
     * @param maxFrames Upper bound on allocatable frames (default 64 MB
     *        worth, generous for a 1994 workstation).
     */
    explicit PhysMem(size_t maxFrames = 16384);

    /**
     * Allocate a zeroed frame.
     *
     * @return The frame number; fatal on exhaustion (configuration
     *         error: the experiment needs more memory than the node has).
     */
    Frame allocFrame();

    /** Release a frame back to the free list. */
    void freeFrame(Frame f);

    /** Mutable view of a frame's bytes. */
    std::span<uint8_t> frameData(Frame f);

    /** Read-only view of a frame's bytes. */
    std::span<const uint8_t> frameData(Frame f) const;

    /** Frames currently allocated. */
    size_t framesInUse() const { return framesInUse_; }

    /** Maximum frames this node can hold. */
    size_t capacity() const { return maxFrames_; }

  private:
    size_t maxFrames_;
    size_t framesInUse_ = 0;
    std::vector<std::unique_ptr<uint8_t[]>> frames_;
    std::vector<Frame> freeList_;
};

} // namespace remora::mem
