#include "mem/address_space.h"

#include <algorithm>
#include <cstring>

#include "util/panic.h"

namespace remora::mem {

namespace {

/** Start addresses at a non-zero base so 0 can act as "null". */
constexpr Vaddr kRegionBase = 0x0001'0000;

constexpr Vaddr
pageAlignDown(Vaddr va)
{
    return va & ~Vaddr{kPageBytes - 1};
}

constexpr size_t
pagesCovering(Vaddr va, size_t len)
{
    if (len == 0) {
        return 0;
    }
    Vaddr first = pageAlignDown(va);
    Vaddr last = pageAlignDown(va + len - 1);
    return static_cast<size_t>((last - first) / kPageBytes) + 1;
}

} // namespace

AddressSpace::AddressSpace(PhysMem &phys)
    : phys_(phys), nextRegion_(kRegionBase)
{}

AddressSpace::~AddressSpace()
{
    // Free every mapped frame back to the node.
    for (Vaddr va = kRegionBase; va < nextRegion_; va += kPageBytes) {
        if (const Pte *pte = pageTable_.lookup(va)) {
            phys_.freeFrame(pte->frame);
            pageTable_.unmap(va);
        }
    }
}

Vaddr
AddressSpace::allocRegion(size_t bytes, bool writable)
{
    REMORA_ASSERT(bytes > 0);
    size_t pages = (bytes + kPageBytes - 1) / kPageBytes;
    Vaddr base = nextRegion_;
    if (base + pages * kPageBytes > PageTable::kVaLimit) {
        REMORA_FATAL("virtual address space exhausted");
    }
    for (size_t i = 0; i < pages; ++i) {
        Frame f = phys_.allocFrame();
        pageTable_.map(base + i * kPageBytes, f, writable);
    }
    nextRegion_ = base + pages * kPageBytes;
    return base;
}

void
AddressSpace::freeRegion(Vaddr base, size_t bytes)
{
    size_t pages = (bytes + kPageBytes - 1) / kPageBytes;
    for (size_t i = 0; i < pages; ++i) {
        Vaddr va = base + i * kPageBytes;
        if (const Pte *pte = pageTable_.lookup(va)) {
            phys_.freeFrame(pte->frame);
            pageTable_.unmap(va);
        }
    }
}

util::Status
AddressSpace::read(Vaddr va, std::span<uint8_t> out) const
{
    size_t done = 0;
    while (done < out.size()) {
        Vaddr cur = va + done;
        const Pte *pte = pageTable_.lookup(cur);
        if (pte == nullptr) {
            return util::Status(util::ErrorCode::kOutOfBounds,
                                "read fault at va " + std::to_string(cur));
        }
        size_t pageOff = cur & (kPageBytes - 1);
        size_t chunk = std::min(out.size() - done, kPageBytes - pageOff);
        auto frame = phys_.frameData(pte->frame);
        std::memcpy(out.data() + done, frame.data() + pageOff, chunk);
        done += chunk;
    }
    if (observer_ && !out.empty()) {
        observer_(false, va, out.size());
    }
    return {};
}

util::Status
AddressSpace::write(Vaddr va, std::span<const uint8_t> data)
{
    size_t done = 0;
    while (done < data.size()) {
        Vaddr cur = va + done;
        const Pte *pte = pageTable_.lookup(cur);
        if (pte == nullptr) {
            return util::Status(util::ErrorCode::kOutOfBounds,
                                "write fault at va " + std::to_string(cur));
        }
        if (!pte->writable) {
            return util::Status(util::ErrorCode::kAccessDenied,
                                "write to read-only page");
        }
        size_t pageOff = cur & (kPageBytes - 1);
        size_t chunk = std::min(data.size() - done, kPageBytes - pageOff);
        auto frame = phys_.frameData(pte->frame);
        std::memcpy(frame.data() + pageOff, data.data() + done, chunk);
        done += chunk;
    }
    if (observer_ && !data.empty()) {
        observer_(true, va, data.size());
    }
    return {};
}

util::Result<uint32_t>
AddressSpace::readWord(Vaddr va) const
{
    if (va % 4 != 0) {
        return util::Status(util::ErrorCode::kInvalidArgument,
                            "unaligned word read");
    }
    uint8_t buf[4];
    util::Status s = read(va, buf);
    if (!s.ok()) {
        return s;
    }
    return static_cast<uint32_t>(buf[0]) | (static_cast<uint32_t>(buf[1]) << 8) |
           (static_cast<uint32_t>(buf[2]) << 16) |
           (static_cast<uint32_t>(buf[3]) << 24);
}

util::Status
AddressSpace::writeWord(Vaddr va, uint32_t value)
{
    if (va % 4 != 0) {
        return util::Status(util::ErrorCode::kInvalidArgument,
                            "unaligned word write");
    }
    uint8_t buf[4] = {
        static_cast<uint8_t>(value),
        static_cast<uint8_t>(value >> 8),
        static_cast<uint8_t>(value >> 16),
        static_cast<uint8_t>(value >> 24),
    };
    return write(va, buf);
}

util::Status
AddressSpace::pin(Vaddr va, size_t len)
{
    size_t pages = pagesCovering(va, len);
    Vaddr base = pageAlignDown(va);
    for (size_t i = 0; i < pages; ++i) {
        Pte *pte = pageTable_.lookup(base + i * kPageBytes);
        if (pte == nullptr) {
            return util::Status(util::ErrorCode::kOutOfBounds,
                                "pin of unmapped page");
        }
        pte->pinned = true;
    }
    return {};
}

util::Status
AddressSpace::unpin(Vaddr va, size_t len)
{
    size_t pages = pagesCovering(va, len);
    Vaddr base = pageAlignDown(va);
    for (size_t i = 0; i < pages; ++i) {
        Pte *pte = pageTable_.lookup(base + i * kPageBytes);
        if (pte == nullptr) {
            return util::Status(util::ErrorCode::kOutOfBounds,
                                "unpin of unmapped page");
        }
        pte->pinned = false;
    }
    return {};
}

bool
AddressSpace::isMapped(Vaddr va, size_t len) const
{
    size_t pages = pagesCovering(va, len);
    Vaddr base = pageAlignDown(va);
    for (size_t i = 0; i < pages; ++i) {
        if (pageTable_.lookup(base + i * kPageBytes) == nullptr) {
            return false;
        }
    }
    return true;
}

} // namespace remora::mem
