/**
 * @file
 * A process virtual address space over a node's physical memory.
 *
 * Provides region allocation (the raw material for exported segments),
 * byte-level access through the page table (so every remote access in
 * the simulation really walks translations and can fault), single-word
 * atomic access used by the remote-memory atomicity guarantee, and
 * pin/unpin ("application-based pinning/unpinning of virtual memory
 * pages", §3.1.1).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "mem/page_table.h"
#include "mem/phys_mem.h"
#include "util/status.h"

namespace remora::mem {

/** One process's virtual memory. */
class AddressSpace
{
  public:
    /**
     * @param phys Backing physical memory (the owning node's).
     */
    explicit AddressSpace(PhysMem &phys);

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    ~AddressSpace();

    /**
     * Allocate and map a fresh region of @p bytes (page-granular).
     *
     * @param bytes Region size; rounded up to whole pages.
     * @param writable Whether stores are permitted.
     * @return Page-aligned base virtual address.
     */
    Vaddr allocRegion(size_t bytes, bool writable = true);

    /** Unmap and free the pages of a region returned by allocRegion. */
    void freeRegion(Vaddr base, size_t bytes);

    /**
     * Copy bytes out of the address space.
     *
     * @return kOutOfBounds if any page in the range is unmapped.
     */
    util::Status read(Vaddr va, std::span<uint8_t> out) const;

    /**
     * Copy bytes into the address space.
     *
     * @return kOutOfBounds on unmapped pages, kAccessDenied on
     *         read-only pages.
     */
    util::Status write(Vaddr va, std::span<const uint8_t> data);

    /**
     * Read one naturally-aligned 32-bit word. Word access is the unit
     * of the local/remote atomicity guarantee.
     */
    util::Result<uint32_t> readWord(Vaddr va) const;

    /** Write one naturally-aligned 32-bit word. */
    util::Status writeWord(Vaddr va, uint32_t value);

    /** Pin the pages covering [va, va+len) for remote access. */
    util::Status pin(Vaddr va, size_t len);

    /** Unpin the pages covering [va, va+len). */
    util::Status unpin(Vaddr va, size_t len);

    /** True when every page in [va, va+len) is mapped. */
    bool isMapped(Vaddr va, size_t len) const;

    /** The translation structure (walked by the kernel emulation). */
    PageTable &pageTable() { return pageTable_; }

    /** Const access to translations. */
    const PageTable &pageTable() const { return pageTable_; }

    /**
     * Observer invoked after every successful read/write (word accesses
     * report once, as a 4-byte access). This is the instrumentation
     * point the happens-before race detector uses to see the exporting
     * process's *own* loads and stores, which remote accesses race with
     * but which never cross the rmem engine. At most one observer; the
     * rmem layer installs it lazily when a segment of this space is
     * exported while the detector is armed.
     */
    using AccessObserver =
        std::function<void(bool write, Vaddr va, size_t len)>;

    /** Install (or, with an empty function, remove) the observer. */
    void setAccessObserver(AccessObserver obs) { observer_ = std::move(obs); }

    /** True when an observer is installed. */
    bool hasAccessObserver() const { return static_cast<bool>(observer_); }

  private:
    PhysMem &phys_;
    PageTable pageTable_;
    Vaddr nextRegion_;
    // Mutable: reads are logically const but still observable events.
    mutable AccessObserver observer_;
};

} // namespace remora::mem
