#include "mem/node.h"

namespace remora::mem {

Node::Node(sim::Simulator &simulator, net::NodeId id, std::string name,
           const NodeParams &params)
    : sim_(simulator), id_(id), name_(std::move(name)),
      mem_(params.memFrames), cpu_(simulator, name_ + ".cpu"),
      nic_(simulator, params.nic, name_ + ".nic")
{}

Process &
Node::spawnProcess(const std::string &name)
{
    processes_.push_back(
        std::make_unique<Process>(nextPid_++, name, mem_));
    return *processes_.back();
}

Process *
Node::findProcess(Pid pid)
{
    for (auto &p : processes_) {
        if (p->pid() == pid) {
            return p.get();
        }
    }
    return nullptr;
}

} // namespace remora::mem
