#include "mem/node.h"

namespace remora::mem {

Node::Node(sim::Simulator &simulator, net::NodeId id, std::string name,
           const NodeParams &params)
    : sim_(simulator), id_(id), name_(std::move(name)),
      mem_(params.memFrames), cpu_(simulator, name_ + ".cpu"),
      nic_(simulator, params.nic, name_ + ".nic")
{}

Process &
Node::spawnProcess(const std::string &name)
{
    processes_.push_back(
        std::make_unique<Process>(nextPid_++, name, mem_));
    return *processes_.back();
}

Process *
Node::findProcess(Pid pid)
{
    for (auto &p : processes_) {
        if (p->pid() == pid) {
            return p.get();
        }
    }
    return nullptr;
}

void
Node::registerStats(obs::MetricRegistry &reg, const std::string &prefix) const
{
    const sim::CpuResource &cpu = cpu_;
    reg.addGauge(prefix + ".cpu.busy_total_us",
                 [&cpu] { return sim::toUsec(cpu.totalBusy()); });
    for (int i = 0; i < static_cast<int>(sim::CpuCategory::kNumCategories);
         ++i) {
        auto cat = static_cast<sim::CpuCategory>(i);
        reg.addGauge(prefix + ".cpu.busy_us." + sim::cpuCategoryName(cat),
                     [&cpu, cat] { return sim::toUsec(cpu.busyIn(cat)); });
    }
    nic_.registerStats(reg, prefix + ".nic");
}

} // namespace remora::mem
