/**
 * @file
 * Synthetic NFS workload generator.
 *
 * Draws an operation stream whose class distribution follows Table 1a
 * and whose transfer sizes follow a configurable model of the
 * departmental server's exported partitions (mostly read-only fonts,
 * source trees, and /usr binaries). Two uses:
 *
 *  - *accounting replay* (Table 1a/1b): classify each drawn op's bytes
 *    without simulating the cluster — millions of ops in milliseconds;
 *  - *driving the simulated file service* (scaling experiments): each
 *    drawn op names a file in a generated tree, ready to issue against
 *    a ServerClerk.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfs/file_store.h"
#include "sim/random.h"
#include "trace/classifier.h"
#include "trace/mix.h"

namespace remora::trace {

/** Transfer-size model of the workload. */
struct SizeModel
{
    /**
     * Read sizes (bytes) and their weights. Mean ~2.2 KB, calibrated so
     * the Table 1b overall control/data ratio lands at the published
     * 0.14 (the 1994 server's size distribution is unpublished; see
     * EXPERIMENTS.md).
     */
    std::vector<std::pair<uint32_t, double>> readSizes = {
        {512, 0.30}, {1024, 0.25}, {2048, 0.20}, {4096, 0.15}, {8192, 0.10}};
    /** Write sizes (bytes) and their weights. */
    std::vector<std::pair<uint32_t, double>> writeSizes = {{4096, 0.5},
                                                           {8192, 0.5}};
    /** Readdir reply sizes (bytes) and their weights. */
    std::vector<std::pair<uint32_t, double>> readdirSizes = {
        {512, 0.4}, {1024, 0.35}, {4096, 0.25}};
    /** Average component-name length. */
    uint32_t nameLen = 12;
    /** Average symlink-target length. */
    uint32_t targetLen = 24;
};

/** One drawn operation. */
struct Op
{
    OpClass cls = OpClass::kNullPing;
    /** Transfer size (read/write/readdir). */
    uint32_t bytes = 0;
    /** Index of the target file in the generated file set. */
    uint32_t fileIdx = 0;
    /** Block-aligned file offset for reads/writes. */
    uint64_t offset = 0;
};

/** Aggregate of a replay: per-class counts and classified traffic. */
struct TrafficSummary
{
    uint64_t opCount[kNumOpClasses] = {};
    Traffic perClass[kNumOpClasses] = {};
    uint64_t totalOps = 0;

    /** Combined traffic across classes. */
    Traffic total() const;
};

/** Table-1a-shaped operation stream. */
class WorkloadGen
{
  public:
    /**
     * @param seed Deterministic stream seed.
     * @param sizes Transfer-size model.
     * @param fileCount Size of the synthetic file population (targets
     *        are drawn Zipf-skewed, hot files first).
     */
    explicit WorkloadGen(uint64_t seed, const SizeModel &sizes = {},
                         uint32_t fileCount = 64);

    /** Draw the next operation. */
    Op next();

    /**
     * Accounting replay: draw @p ops operations and classify each
     * (no cluster simulation).
     */
    TrafficSummary replay(uint64_t ops);

    /**
     * Classify the *exact* Table 1a population: every published call,
     * with sizes drawn from the size model per class (this is how the
     * Table 1b reproduction is computed; no sampling noise on counts).
     */
    TrafficSummary replayPaperPopulation();

    /** The size model in force. */
    const SizeModel &sizes() const { return sizes_; }

  private:
    /** Draw a size from a weighted table. */
    uint32_t drawSize(const std::vector<std::pair<uint32_t, double>> &table);

    /** Shape for one op of @p cls. */
    OpShape shapeFor(OpClass cls, uint32_t bytes) const;

    sim::Random rng_;
    SizeModel sizes_;
    uint32_t fileCount_;
    sim::Random::Discrete classDist_;
    sim::Random::Zipf filePick_;
};

/**
 * Build a file tree shaped like the paper's exported partitions in
 * @p store: font files, a source tree, and binaries, plus symlinks.
 *
 * @return Handles of the created regular files (workload targets),
 *         ordered hot-first to match the generator's Zipf draw.
 */
std::vector<dfs::FileHandle> buildPaperFileSet(dfs::FileStore &store,
                                               uint32_t fileCount,
                                               uint64_t seed);

} // namespace remora::trace
