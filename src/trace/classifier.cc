#include "trace/classifier.h"

#include <string>
#include <vector>

#include "dfs/nfs_proto.h"
#include "rpc/marshal.h"

namespace remora::trace {

namespace {

/** RPC communication identifier (xid), present on call and reply. */
constexpr uint64_t kXidBytes = 4;

/** Encoded size of the flat attribute block (semantic data). */
uint64_t
attrBytes()
{
    rpc::Marshal m;
    dfs::putFileAttr(m, dfs::FileAttr{});
    return m.size();
}

/** Encoded size of the statfs block (semantic data). */
uint64_t
statBytes()
{
    rpc::Marshal m;
    dfs::putFsStat(m, dfs::FsStat{});
    return m.size();
}

/** Wire size of a string marshaled by XDR. */
uint64_t
xdrString(uint64_t len)
{
    return 4 + ((len + 3) / 4) * 4;
}

/** Wire size of opaque bytes marshaled by XDR. */
uint64_t
xdrOpaque(uint64_t len)
{
    return 4 + ((len + 3) / 4) * 4;
}

} // namespace

Traffic
classifyOp(OpClass cls, const OpShape &shape)
{
    const uint64_t attr = attrBytes();
    const uint64_t fh = dfs::kWireFileHandleBytes;
    const uint64_t proc = 4;   // procedure number word
    const uint64_t status = 4; // reply status word
    const uint64_t xids = 2 * kXidBytes;

    uint64_t req = 0;
    uint64_t resp = 0;
    uint64_t data = 0;

    switch (cls) {
      case OpClass::kGetAttr:
        req = proc + fh;
        resp = status + attr;
        data = attr;
        break;
      case OpClass::kLookup:
        req = proc + fh + xdrString(shape.nameLen);
        resp = status + fh + attr;
        data = shape.nameLen + attr;
        break;
      case OpClass::kRead:
        req = proc + fh + 8 /*offset*/ + 4 /*count*/;
        resp = status + attr + xdrOpaque(shape.payloadBytes);
        data = shape.payloadBytes + attr;
        break;
      case OpClass::kNullPing:
        req = proc;
        resp = status;
        data = 0;
        break;
      case OpClass::kReadLink:
        req = proc + fh;
        resp = status + xdrString(shape.targetLen);
        data = shape.targetLen;
        break;
      case OpClass::kReadDir: {
        req = proc + fh + 4 /*maxBytes*/;
        // Packed entries average 9 bytes + name per entry; marshaled
        // entries carry a fileid, a length word, and name padding.
        uint64_t perPacked = 9 + shape.nameLen;
        uint64_t entries =
            perPacked ? shape.payloadBytes / perPacked : 0;
        uint64_t perWire = 8 + xdrString(shape.nameLen);
        resp = status + 4 /*count*/ + entries * perWire;
        data = shape.payloadBytes;
        break;
      }
      case OpClass::kStatFs:
        req = proc + fh;
        resp = status + statBytes();
        data = statBytes();
        break;
      case OpClass::kWrite:
        req = proc + fh + 8 /*offset*/ + xdrOpaque(shape.payloadBytes);
        resp = status + attr;
        data = shape.payloadBytes + attr;
        break;
      case OpClass::kOther:
        // Miscellaneous mutating ops (setattr, create, remove, ...):
        // handle + a small argument block in, attributes back.
        req = proc + fh + 32;
        resp = status + attr;
        data = attr + 16;
        break;
      case OpClass::kNumClasses:
        break;
    }

    uint64_t total = req + resp + xids;
    Traffic t;
    t.dataBytes = data;
    t.controlBytes = total > data ? total - data : 0;
    return t;
}

} // namespace remora::trace
