#include "trace/mix.h"

namespace remora::trace {

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::kGetAttr: return "Get File Attribute";
      case OpClass::kLookup: return "Lookup File Name";
      case OpClass::kRead: return "Read File Data";
      case OpClass::kNullPing: return "Null Ping Call";
      case OpClass::kReadLink: return "Read Symbolic Link";
      case OpClass::kReadDir: return "Read Directory Contents";
      case OpClass::kStatFs: return "Read File System Stats.";
      case OpClass::kWrite: return "Write File Data";
      case OpClass::kOther: return "Other";
      case OpClass::kNumClasses: break;
    }
    return "Unknown";
}

const std::array<MixRow, kNumOpClasses> &
paperMix()
{
    // The exact counts of Table 1a.
    static const std::array<MixRow, kNumOpClasses> kMix = {{
        {OpClass::kGetAttr, 8960671},
        {OpClass::kLookup, 8840866},
        {OpClass::kRead, 4478036},
        {OpClass::kNullPing, 3602730},
        {OpClass::kReadLink, 1628256},
        {OpClass::kReadDir, 981345},
        {OpClass::kStatFs, 149142},
        {OpClass::kWrite, 109712},
        {OpClass::kOther, 109986},
    }};
    return kMix;
}

uint64_t
paperMixTotal()
{
    uint64_t total = 0;
    for (const MixRow &row : paperMix()) {
        total += row.count;
    }
    return total;
}

double
paperMixPercent(OpClass cls)
{
    return 100.0 *
           static_cast<double>(paperMix()[static_cast<size_t>(cls)].count) /
           static_cast<double>(paperMixTotal());
}

} // namespace remora::trace
