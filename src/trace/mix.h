/**
 * @file
 * The departmental NFS server's operation mix (Table 1a).
 *
 * The paper instrumented the primary NFS file server for 80-100
 * workstations over several days; Table 1a reports 28,860,744 RPCs. The
 * exact published counts are reproduced here and drive the workload
 * generator, so every traffic experiment sees the same skew the paper
 * argues from: nearly all calls (everything but the null ping) exist
 * only to move data or metadata.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace remora::trace {

/** The operation classes of Table 1a. */
enum class OpClass : uint8_t
{
    kGetAttr = 0,
    kLookup,
    kRead,
    kNullPing,
    kReadLink,
    kReadDir,
    kStatFs,
    kWrite,
    kOther,
    kNumClasses,
};

/** Number of distinct classes. */
inline constexpr size_t kNumOpClasses =
    static_cast<size_t>(OpClass::kNumClasses);

/** Human-readable label matching the paper's row names. */
const char *opClassName(OpClass cls);

/** One row of Table 1a. */
struct MixRow
{
    OpClass cls;
    uint64_t count;
};

/** The published Table 1a counts, in the paper's row order. */
const std::array<MixRow, kNumOpClasses> &paperMix();

/** Total calls in Table 1a (28,860,744). */
uint64_t paperMixTotal();

/** Percentage of the mix class @p cls represents. */
double paperMixPercent(OpClass cls);

} // namespace remora::trace
