/**
 * @file
 * The control/data traffic classifier behind Table 1b.
 *
 * Table 1b splits client/server traffic into:
 *
 *  - *data* — "the data that is required by the particular distributed
 *    file system protocol": file contents, attributes, names, link
 *    targets, directory entries. If a communication primitive allowed
 *    direct protected transfers, this is all that would cross the wire.
 *  - *control* — "additional data that is transmitted because NFS uses
 *    RPC as the communication primitive": file handles, communication
 *    identifiers (xids), procedure numbers, status words, and the
 *    length/padding words the XDR marshaling imposes.
 *
 * Network-protocol-specific headers (UDP/IP) are excluded, exactly as
 * in the paper. Sizes are not estimated: they are measured off the same
 * encoders (dfs/nfs_proto) the file service actually sends, so the
 * classification is of real wire bytes.
 */
#pragma once

#include <cstdint>
#include <string>

#include "trace/mix.h"

namespace remora::trace {

/** Byte totals of one classification. */
struct Traffic
{
    uint64_t controlBytes = 0;
    uint64_t dataBytes = 0;

    /** Table 1b's "Control / Data" ratio column. */
    double
    ratio() const
    {
        return dataBytes == 0
                   ? 0.0
                   : static_cast<double>(controlBytes) /
                         static_cast<double>(dataBytes);
    }

    Traffic &
    operator+=(const Traffic &o)
    {
        controlBytes += o.controlBytes;
        dataBytes += o.dataBytes;
        return *this;
    }
};

/** Per-operation parameters that determine its wire size. */
struct OpShape
{
    /** Payload bytes moved (file data, packed entries, etc.). */
    uint32_t payloadBytes = 0;
    /** Component-name length (lookup). */
    uint32_t nameLen = 12;
    /** Symlink-target length (readlink). */
    uint32_t targetLen = 24;
};

/**
 * Classify one RPC of class @p cls with shape @p shape.
 *
 * Request and response are both counted (Table 1b is total
 * client/server traffic).
 */
Traffic classifyOp(OpClass cls, const OpShape &shape);

} // namespace remora::trace
