#include "trace/workload.h"

#include <algorithm>

#include "util/panic.h"

namespace remora::trace {

namespace {

/** Class-draw weights straight from Table 1a. */
std::vector<double>
mixWeights()
{
    std::vector<double> w;
    w.reserve(kNumOpClasses);
    for (const MixRow &row : paperMix()) {
        w.push_back(static_cast<double>(row.count));
    }
    return w;
}

} // namespace

Traffic
TrafficSummary::total() const
{
    Traffic t;
    for (const Traffic &c : perClass) {
        t += c;
    }
    return t;
}

WorkloadGen::WorkloadGen(uint64_t seed, const SizeModel &sizes,
                         uint32_t fileCount)
    : rng_(seed), sizes_(sizes), fileCount_(fileCount),
      classDist_(mixWeights()), filePick_(fileCount, 0.95)
{
    REMORA_ASSERT(fileCount > 0);
}

uint32_t
WorkloadGen::drawSize(const std::vector<std::pair<uint32_t, double>> &table)
{
    REMORA_ASSERT(!table.empty());
    std::vector<double> w;
    w.reserve(table.size());
    for (const auto &[bytes, weight] : table) {
        (void)bytes;
        w.push_back(weight);
    }
    // Note: building the sampler per call would be wasteful; cache by
    // table identity (the three tables are stable per generator).
    sim::Random::Discrete dist(w);
    return table[dist.sample(rng_)].first;
}

OpShape
WorkloadGen::shapeFor(OpClass cls, uint32_t bytes) const
{
    OpShape s;
    s.payloadBytes = bytes;
    s.nameLen = sizes_.nameLen;
    s.targetLen = sizes_.targetLen;
    (void)cls;
    return s;
}

Op
WorkloadGen::next()
{
    Op op;
    op.cls = static_cast<OpClass>(classDist_.sample(rng_));
    op.fileIdx = static_cast<uint32_t>(filePick_.sample(rng_));
    switch (op.cls) {
      case OpClass::kRead:
        op.bytes = drawSize(sizes_.readSizes);
        break;
      case OpClass::kWrite:
        op.bytes = drawSize(sizes_.writeSizes);
        break;
      case OpClass::kReadDir:
        op.bytes = drawSize(sizes_.readdirSizes);
        break;
      default:
        op.bytes = 0;
        break;
    }
    op.offset = 0; // block-aligned start; hot files are small
    return op;
}

TrafficSummary
WorkloadGen::replay(uint64_t ops)
{
    TrafficSummary sum;
    for (uint64_t i = 0; i < ops; ++i) {
        Op op = next();
        size_t idx = static_cast<size_t>(op.cls);
        ++sum.opCount[idx];
        sum.perClass[idx] += classifyOp(op.cls, shapeFor(op.cls, op.bytes));
        ++sum.totalOps;
    }
    return sum;
}

TrafficSummary
WorkloadGen::replayPaperPopulation()
{
    TrafficSummary sum;
    for (const MixRow &row : paperMix()) {
        size_t idx = static_cast<size_t>(row.cls);
        sum.opCount[idx] = row.count;
        sum.totalOps += row.count;
        // Average the size distribution exactly instead of sampling
        // millions of draws: classify one op per distinct size and
        // weight by probability.
        auto addWeighted =
            [&](const std::vector<std::pair<uint32_t, double>> &table) {
                double wsum = 0;
                for (const auto &[bytes, weight] : table) {
                    (void)bytes;
                    wsum += weight;
                }
                for (const auto &[bytes, weight] : table) {
                    Traffic t =
                        classifyOp(row.cls, shapeFor(row.cls, bytes));
                    double scale =
                        weight / wsum * static_cast<double>(row.count);
                    sum.perClass[idx].controlBytes += static_cast<uint64_t>(
                        static_cast<double>(t.controlBytes) * scale);
                    sum.perClass[idx].dataBytes += static_cast<uint64_t>(
                        static_cast<double>(t.dataBytes) * scale);
                }
            };
        switch (row.cls) {
          case OpClass::kRead:
            addWeighted(sizes_.readSizes);
            break;
          case OpClass::kWrite:
            addWeighted(sizes_.writeSizes);
            break;
          case OpClass::kReadDir:
            addWeighted(sizes_.readdirSizes);
            break;
          default: {
            Traffic t = classifyOp(row.cls, shapeFor(row.cls, 0));
            sum.perClass[idx].controlBytes += t.controlBytes * row.count;
            sum.perClass[idx].dataBytes += t.dataBytes * row.count;
            break;
          }
        }
    }
    return sum;
}

std::vector<dfs::FileHandle>
buildPaperFileSet(dfs::FileStore &store, uint32_t fileCount, uint64_t seed)
{
    sim::Random rng(seed);
    std::vector<dfs::FileHandle> files;
    files.reserve(fileCount);

    auto fonts = store.mkdir(store.root(), "fonts");
    auto src = store.mkdir(store.root(), "src");
    auto usr = store.mkdir(store.root(), "usr");
    REMORA_ASSERT(fonts.ok() && src.ok() && usr.ok());
    auto bin = store.mkdir(usr.value(), "bin");
    REMORA_ASSERT(bin.ok());

    for (uint32_t i = 0; i < fileCount; ++i) {
        dfs::FileHandle dir;
        std::string name;
        uint64_t size;
        switch (i % 3) {
          case 0:
            dir = fonts.value();
            name = "font" + std::to_string(i) + ".pcf";
            size = 2048 + rng.uniformInt(6144);
            break;
          case 1:
            dir = src.value();
            name = "mod" + std::to_string(i) + ".c";
            size = 1024 + rng.uniformInt(15360);
            break;
          default:
            dir = bin.value();
            name = "tool" + std::to_string(i);
            size = 8192 + rng.uniformInt(24576);
            break;
        }
        auto fh = store.createFile(dir, name, size);
        REMORA_ASSERT(fh.ok());
        files.push_back(fh.value());
    }

    // A few symlinks, as on the real server (X11 font aliases etc.).
    for (uint32_t i = 0; i < std::max<uint32_t>(fileCount / 8, 1); ++i) {
        auto l = store.symlink(store.root(), "link" + std::to_string(i),
                               "usr/bin/tool" + std::to_string(i));
        REMORA_ASSERT(l.ok());
    }
    return files;
}

} // namespace remora::trace
