/**
 * @file
 * Wait-for graph: structured hang detection for the simulator.
 *
 * The deterministic simulator quiesces whenever its event queue drains,
 * which silently conflates two very different end states: "every
 * simulated process ran to completion" and "somebody is parked forever
 * waiting for a wakeup that will never come". The WaitGraph gives the
 * simulator (and the schedule explorer built on top of it) the state to
 * tell them apart, and to report *why* with the same site attribution
 * RaceReport uses:
 *
 *  - Lock edges. Sync objects (rmem::SpinLock, the dfs token area)
 *    record who holds which sync word and who is spinning on it. Every
 *    new wait edge runs a cycle check over holder -> wanted-word ->
 *    holder chains; a cycle is a deadlock even though the spinners keep
 *    the event queue busy with backoff timers.
 *  - Parked coroutines. Future awaits and blocking channel reads park
 *    with a site string; a park still present at quiescence is a
 *    coroutine blocked forever (an orphan/leak unless it is a daemon
 *    service loop, which registers itself as such).
 *  - Channel accounting. Notification channels record posted/consumed
 *    counts; a channel with undelivered notifications and no consumer
 *    at quiescence is a lost wakeup. Channel state survives channel
 *    destruction so evidence is not destroyed with the workload.
 *
 * The graph is owned by the Simulator and reset with it; all hooks are
 * cheap enough to stay enabled unconditionally.
 */
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/time.h"

namespace remora::sim {

/** One structured hang finding (deadlock, lost wakeup, blocked task). */
struct HangReport
{
    enum class Kind : uint8_t
    {
        /** Cycle in the wait-for graph among lock holders/waiters. */
        kDeadlock = 0,
        /** Notification(s) still pending with no consumer at quiescence. */
        kLostWakeup,
        /** Non-daemon coroutine parked forever at quiescence. */
        kBlockedTask,
        /** Step budget exhausted without draining or deadlocking. */
        kNonQuiescent,
    };

    Kind kind = Kind::kDeadlock;
    /** Simulated time the condition was detected. */
    Time at = 0;
    /** Participating sites (lock sites around the cycle, park site...). */
    std::vector<std::string> parties;
    /** Extra context (pending counts, entity tags). */
    std::string detail;

    /** Stable dedupe key: kind plus canonicalized parties. */
    std::string signature() const;

    /** Multi-line human-readable rendering (RaceReport style). */
    std::string format() const;

    /** Report kind as a lowercase token ("deadlock", ...). */
    static const char *kindName(Kind k);
};

/**
 * The wait-for graph itself. Entities are lock holders (sync-object
 * owner tags); resources are packed (node, segment, offset) sync words.
 */
class WaitGraph
{
  public:
    using Entity = uint64_t;
    using Resource = uint64_t;

    /** Pack a sync word's identity into a Resource key. */
    static Resource
    packResource(uint32_t node, uint32_t seg, uint64_t offset)
    {
        return (static_cast<uint64_t>(node) << 48) |
               (static_cast<uint64_t>(seg) << 32) | offset;
    }

    // ---- Lock edges (sync objects) ---------------------------------

    /** @p e now holds @p r; @p site labels the lock for reports. */
    void acquired(Entity e, Resource r, const std::string &site);

    /** @p e released @p r. */
    void released(Entity e, Resource r);

    /**
     * @p e failed to take @p r and will retry: record the wait edge and
     * run the cycle check.
     *
     * @return True when this edge completed a *new* deadlock cycle
     *         (recorded in deadlocks(); duplicates are suppressed).
     */
    bool waiting(Entity e, Resource r, const std::string &site, Time now);

    /** @p e stopped waiting (acquired the word or gave up). */
    void waitDone(Entity e);

    // ---- Parked coroutines -----------------------------------------

    /**
     * A coroutine parked awaiting a wakeup keyed by @p who (the await
     * state / channel). Daemon parks (eternal service loops) are
     * excluded from blockedCount() and quiescence reports.
     */
    void parked(const void *who, const std::string &site, bool daemon);

    /** The wakeup keyed by @p who arrived; the park is over. */
    void unparked(const void *who);

    // ---- Notification channels -------------------------------------

    /**
     * Register a channel; returns its id (stable allocation order, so
     * deterministic across replays and usable as a dependency key).
     * Channel state outlives channelClose() so lost-wakeup evidence
     * survives workload teardown.
     */
    uint64_t channelOpen(std::string label);

    /** Improve the channel's report label (e.g. once its name is known). */
    void channelLabel(uint64_t id, std::string label);

    /** The channel object is being destroyed. */
    void channelClose(uint64_t id);

    /** A notification was queued on the channel. */
    void channelPosted(uint64_t id);

    /** A queued notification was consumed (read or handler-dispatched). */
    void channelConsumed(uint64_t id);

    /** The channel currently has a parked blocking reader. */
    void channelReader(uint64_t id, bool present);

    // ---- Results ---------------------------------------------------

    /** Non-daemon parked coroutines right now. */
    size_t blockedCount() const;

    /** Deadlock cycles found so far (deduped). */
    const std::vector<HangReport> &deadlocks() const { return deadlocks_; }

    /**
     * End-of-run pass: lost wakeups (pending notifications nobody will
     * consume) and blocked-forever parks. Only meaningful once the
     * event queue has drained.
     */
    std::vector<HangReport> quiescenceReports(Time now) const;

    /** Drop all state (fresh workload in the same simulator). */
    void reset();

  private:
    struct LockState
    {
        Entity owner = 0;
        std::string site;
    };
    struct WaitState
    {
        Resource resource = 0;
        std::string site;
    };
    struct Park
    {
        std::string site;
        bool daemon = false;
    };
    struct ChannelState
    {
        std::string label;
        uint64_t posted = 0;
        uint64_t consumed = 0;
        bool open = true;
        bool readerParked = false;
    };

    std::map<Resource, LockState> held_;
    std::map<Entity, WaitState> waiting_;
    std::map<const void *, Park> parked_;
    std::map<uint64_t, ChannelState> channels_;
    uint64_t nextChannelId_ = 1;
    std::vector<HangReport> deadlocks_;
    std::set<std::string> seenCycles_;
};

} // namespace remora::sim
