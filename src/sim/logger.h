/**
 * @file
 * Leveled, component-tagged diagnostic logging.
 *
 * Logging is off (kWarn) by default so benches and tests stay quiet;
 * examples turn it up to narrate what the cluster is doing. Messages are
 * prefixed with the simulated timestamp when a time source is installed.
 *
 * Two extra facilities support post-mortem debugging:
 *
 *  - The REMORA_LOG_LEVEL environment variable (trace|debug|info|warn|
 *    error) sets the initial level at first use, so a bench or test can
 *    be made verbose without recompiling. setLevel() still overrides.
 *  - A bounded ring of recently formatted messages (captured at
 *    ringLevel(), independent of the emit level) is flushed to stderr by
 *    util::panic()/fatal(), so a crashing test shows the last N cluster
 *    events instead of nothing.
 */
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/time.h"

namespace remora::sim {

/** Log severity, ordered from most to least verbose. */
enum class LogLevel : uint8_t
{
    kTrace = 0,
    kDebug,
    kInfo,
    kWarn,
    kError,
};

/** Global logging configuration (single simulation per process). */
class Logger
{
  public:
    /** Current minimum level that is emitted to stderr. */
    static LogLevel
    level()
    {
        ensureInit();
        return level_;
    }

    /** Set the minimum emitted level (overrides REMORA_LOG_LEVEL). */
    static void
    setLevel(LogLevel lvl)
    {
        ensureInit();
        level_ = lvl;
    }

    /** Minimum level captured into the recent-event ring. */
    static LogLevel
    ringLevel()
    {
        ensureInit();
        return ringLevel_;
    }

    /** Set the ring capture level. */
    static void
    setRingLevel(LogLevel lvl)
    {
        ensureInit();
        ringLevel_ = lvl;
    }

    /** Resize the recent-event ring (0 disables capture). */
    static void setRingCapacity(size_t n);

    /** Install a simulated-time source for timestamps (may be null). */
    static void setTimeSource(std::function<Time()> src);

    /** True when messages at @p lvl would be emitted or ring-captured. */
    static bool
    enabled(LogLevel lvl)
    {
        ensureInit();
        return lvl >= level_ || lvl >= ringLevel_;
    }

    /** Emit one message; used by the REMORA_LOG macro. */
    static void write(LogLevel lvl, const char *tag, const std::string &msg);

    /** The ring contents, oldest first. */
    static std::vector<std::string> recent();

    /** Drop all ring contents. */
    static void clearRecent();

    /** Write the ring to stderr (the panic-hook path). */
    static void dumpRecent();

    /**
     * Parse a level name ("trace", "DEBUG", ...).
     *
     * @return True and sets @p out on success; false on unknown names.
     */
    static bool parseLevel(const char *name, LogLevel *out);

  private:
    /** One-time init: read REMORA_LOG_LEVEL, install the panic hook. */
    static void ensureInit();

    static LogLevel level_;
    static LogLevel ringLevel_;
    static bool initialized_;
    static std::function<Time()> timeSource_;
};

} // namespace remora::sim

/**
 * Log with stream syntax: REMORA_LOG(kInfo, "rmem", "wrote " << n).
 * The stream expression is not evaluated when the level is disabled.
 */
#define REMORA_LOG(lvl, tag, expr)                                             \
    do {                                                                       \
        if (::remora::sim::Logger::enabled(::remora::sim::LogLevel::lvl)) {    \
            std::ostringstream remora_log_ss;                                  \
            remora_log_ss << expr;                                             \
            ::remora::sim::Logger::write(::remora::sim::LogLevel::lvl, (tag),  \
                                         remora_log_ss.str());                 \
        }                                                                      \
    } while (0)
