/**
 * @file
 * Leveled, component-tagged diagnostic logging.
 *
 * Logging is off (kWarn) by default so benches and tests stay quiet;
 * examples turn it up to narrate what the cluster is doing. Messages are
 * prefixed with the simulated timestamp when a time source is installed.
 */
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "sim/time.h"

namespace remora::sim {

/** Log severity, ordered from most to least verbose. */
enum class LogLevel : uint8_t
{
    kTrace = 0,
    kDebug,
    kInfo,
    kWarn,
    kError,
};

/** Global logging configuration (single simulation per process). */
class Logger
{
  public:
    /** Current minimum level that is emitted. */
    static LogLevel level() { return level_; }

    /** Set the minimum emitted level. */
    static void setLevel(LogLevel lvl) { level_ = lvl; }

    /** Install a simulated-time source for timestamps (may be null). */
    static void setTimeSource(std::function<Time()> src);

    /** True when messages at @p lvl would be emitted. */
    static bool enabled(LogLevel lvl) { return lvl >= level_; }

    /** Emit one message; used by the REMORA_LOG macro. */
    static void write(LogLevel lvl, const char *tag, const std::string &msg);

  private:
    static LogLevel level_;
    static std::function<Time()> timeSource_;
};

} // namespace remora::sim

/**
 * Log with stream syntax: REMORA_LOG(kInfo, "rmem", "wrote " << n).
 * The stream expression is not evaluated when the level is disabled.
 */
#define REMORA_LOG(lvl, tag, expr)                                             \
    do {                                                                       \
        if (::remora::sim::Logger::enabled(::remora::sim::LogLevel::lvl)) {    \
            std::ostringstream remora_log_ss;                                  \
            remora_log_ss << expr;                                             \
            ::remora::sim::Logger::write(::remora::sim::LogLevel::lvl, (tag),  \
                                         remora_log_ss.str());                 \
        }                                                                      \
    } while (0)
