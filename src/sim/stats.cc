#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/json.h"
#include "util/panic.h"

namespace remora::sim {

void
Accumulator::sample(double x)
{
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
Accumulator::variance() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double width, size_t buckets)
    : lo_(lo), width_(width), counts_(buckets, 0)
{
    REMORA_ASSERT(width > 0.0);
    REMORA_ASSERT(buckets > 0);
}

void
Histogram::sample(double x)
{
    if (std::isnan(x)) {
        ++nan_; // would make the bucket index UB; reject and count
        return;
    }
    ++total_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    if (x < lo_) {
        ++underflow_;
        return;
    }
    double idx = (x - lo_) / width_;
    if (idx >= static_cast<double>(counts_.size())) {
        ++overflow_;
        return;
    }
    ++counts_[static_cast<size_t>(idx)];
}

double
Histogram::quantile(double q) const
{
    REMORA_ASSERT(q >= 0.0 && q <= 1.0);
    REMORA_ASSERT(total_ > 0);
    uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total_));
    uint64_t seen = underflow_;
    if (seen > target) {
        return min_; // in the underflow region: the observed floor
    }
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (seen + counts_[i] > target) {
            // Linear interpolation within the bucket.
            double frac = counts_[i]
                ? static_cast<double>(target - seen) /
                      static_cast<double>(counts_[i])
                : 0.0;
            return bucketLo(i) + frac * width_;
        }
        seen += counts_[i];
    }
    // In the overflow region: interpolate from the top bucket edge out
    // to the largest observation, so tail quantiles keep moving when
    // the tail escapes the bucketed range.
    double top = lo_ + width_ * static_cast<double>(counts_.size());
    if (overflow_ == 0) {
        return std::min(max_, top);
    }
    double frac = static_cast<double>(target - seen) /
                  static_cast<double>(overflow_);
    return top + frac * std::max(0.0, max_ - top);
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), uint64_t{0});
    underflow_ = overflow_ = nan_ = total_ = 0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

namespace {

std::string
renderCounter(const void *obj)
{
    const auto *c = static_cast<const Counter *>(obj);
    return std::to_string(c->value());
}

std::string
renderAccumulator(const void *obj)
{
    const auto *a = static_cast<const Accumulator *>(obj);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "count=%llu mean=%.3f min=%.3f max=%.3f stddev=%.3f",
                  static_cast<unsigned long long>(a->count()), a->mean(),
                  a->count() ? a->min() : 0.0, a->count() ? a->max() : 0.0,
                  a->stddev());
    return buf;
}

std::string
renderHistogram(const void *obj)
{
    const auto *h = static_cast<const Histogram *>(obj);
    char buf[200];
    if (h->total() == 0) {
        std::snprintf(buf, sizeof(buf), "count=0");
        return buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "count=%llu p50=%.3f p90=%.3f p99=%.3f "
                  "underflow=%llu overflow=%llu",
                  static_cast<unsigned long long>(h->total()),
                  h->quantile(0.50), h->quantile(0.90), h->quantile(0.99),
                  static_cast<unsigned long long>(h->underflow()),
                  static_cast<unsigned long long>(h->overflow()));
    return buf;
}

std::string
renderCounterJson(const void *obj)
{
    const auto *c = static_cast<const Counter *>(obj);
    util::JsonWriter w;
    w.beginObject().kv("type", "counter").kv("value", c->value()).endObject();
    return w.str();
}

std::string
renderAccumulatorJson(const void *obj)
{
    const auto *a = static_cast<const Accumulator *>(obj);
    util::JsonWriter w;
    w.beginObject()
        .kv("type", "accumulator")
        .kv("count", a->count())
        .kv("sum", a->sum())
        .kv("mean", a->mean())
        .kv("min", a->count() ? a->min() : 0.0)
        .kv("max", a->count() ? a->max() : 0.0)
        .kv("stddev", a->stddev())
        .endObject();
    return w.str();
}

std::string
renderHistogramJson(const void *obj)
{
    const auto *h = static_cast<const Histogram *>(obj);
    util::JsonWriter w;
    w.beginObject()
        .kv("type", "histogram")
        .kv("count", h->total())
        .kv("underflow", h->underflow())
        .kv("overflow", h->overflow());
    if (h->total() > 0) {
        w.kv("p50", h->quantile(0.50))
            .kv("p90", h->quantile(0.90))
            .kv("p99", h->quantile(0.99));
    }
    w.key("buckets").beginArray();
    for (size_t i = 0; i < h->buckets(); ++i) {
        // Sparse: only occupied buckets, as [lo, count] pairs.
        if (h->bucketCount(i) == 0) {
            continue;
        }
        w.beginArray()
            .value(h->bucketLo(i))
            .value(h->bucketCount(i))
            .endArray();
    }
    w.endArray().endObject();
    return w.str();
}

} // namespace

void
StatRegistry::add(const std::string &name, const Counter &c)
{
    entries_[name] = EntryRef{&c, &renderCounter, &renderCounterJson};
}

void
StatRegistry::add(const std::string &name, const Accumulator &a)
{
    entries_[name] = EntryRef{&a, &renderAccumulator, &renderAccumulatorJson};
}

void
StatRegistry::add(const std::string &name, const Histogram &h)
{
    entries_[name] = EntryRef{&h, &renderHistogram, &renderHistogramJson};
}

std::string
StatRegistry::dump() const
{
    std::ostringstream out;
    for (const auto &[name, entry] : entries_) {
        out << name << ' ' << entry.render(entry.object) << '\n';
    }
    return out.str();
}

std::string
StatRegistry::dumpJson() const
{
    std::ostringstream out;
    out << '{';
    bool first = true;
    for (const auto &[name, entry] : entries_) {
        if (!first) {
            out << ',';
        }
        first = false;
        out << '"' << util::jsonEscape(name)
            << "\":" << entry.renderJson(entry.object);
    }
    out << '}';
    return out.str();
}

} // namespace remora::sim
