#include "sim/explorer.h"

#include <algorithm>
#include <utility>

#include "util/panic.h"

namespace remora::sim {

/**
 * The DFS driver policy: at depths covered by the stack it follows the
 * node's current choice; at the frontier it materialises a new node,
 * seeds it with the inherited sleep set, and picks the first
 * non-sleeping alternative. Inheritance filters the sleep set by
 * independence with the transition taken, per the sleep-set algorithm.
 */
class ScheduleExplorer::Policy final : public SchedulePolicy
{
  public:
    Policy(ScheduleExplorer &ex) : ex_(ex) {}

    size_t
    choose(Simulator &, const std::vector<ReadyChoice> &ready) override
    {
        auto &stack = ex_.stack_;
        if (depth_ == stack.size()) {
            Node n;
            n.altIds.reserve(ready.size());
            for (const ReadyChoice &c : ready) {
                n.altIds.push_back(c.id);
            }
            n.sleep = inheritSleep_;
            size_t pick = ready.size();
            for (size_t i = 0; i < ready.size(); ++i) {
                if (n.sleep.count(ready[i].id) == 0) {
                    pick = i;
                    break;
                }
            }
            if (pick == ready.size()) {
                // Every alternative is asleep: this state is redundant
                // (reachable by commuting an explored schedule). We
                // cannot unwind a half-run simulator, so run on.
                pick = 0;
            }
            n.chosen = pick;
            n.explored = 1;
            stack.push_back(std::move(n));
        } else {
            Node &n = stack[depth_];
            bool match = n.altIds.size() == ready.size();
            for (size_t i = 0; match && i < ready.size(); ++i) {
                match = n.altIds[i] == ready[i].id;
            }
            if (!match) {
                REMORA_FATAL("ScheduleExplorer: ready set diverged on "
                             "replay — the workload is not deterministic");
            }
        }
        Node &n = stack[depth_];
        size_t idx = n.chosen;
        if (ex_.opts_.reduction) {
            // Child inherits the sleeping transitions that commute with
            // the one taken; dependent ones wake up (their order
            // relative to idx matters, so they must be re-explored).
            std::set<EventId> child;
            const DepHint &taken = ready[idx].hint;
            for (EventId z : n.sleep) {
                for (const ReadyChoice &c : ready) {
                    if (c.id == z) {
                        if (!DepHint::dependent(c.hint, taken)) {
                            child.insert(z);
                        }
                        break;
                    }
                }
            }
            inheritSleep_ = std::move(child);
        } else {
            inheritSleep_.clear();
        }
        choices_.push_back(static_cast<uint32_t>(idx));
        ++depth_;
        return idx;
    }

    const std::vector<uint32_t> &choices() const { return choices_; }

    size_t depth() const { return depth_; }

  private:
    ScheduleExplorer &ex_;
    size_t depth_ = 0;
    std::vector<uint32_t> choices_;
    std::set<EventId> inheritSleep_;
};

ScheduleExplorer::ScheduleExplorer(Workload workload, ExplorerOptions opts)
    : workload_(std::move(workload)), opts_(opts)
{
    REMORA_ASSERT(workload_ != nullptr);
    REMORA_ASSERT(opts_.maxSchedules >= 1);
}

void
ScheduleExplorer::collectReports(Simulator &sim, RunOutcome &out)
{
    out.digest = sim.digest().value();
    out.steps = sim.eventsProcessed();
    out.quiescent = sim.livePendingEvents() == 0;
    for (const HangReport &d : sim.waitGraph().deadlocks()) {
        out.reports.push_back(d);
    }
    if (sim.deadlockHalted()) {
        return; // mid-flight state; quiescence checks don't apply
    }
    if (!out.quiescent) {
        HangReport rep;
        rep.kind = HangReport::Kind::kNonQuiescent;
        rep.at = sim.now();
        rep.detail = sim.budgetExhausted()
                         ? "step budget exhausted before quiescence"
                         : "workload returned with events still pending";
        out.reports.push_back(std::move(rep));
        return;
    }
    for (HangReport &rep : sim.waitGraph().quiescenceReports(sim.now())) {
        out.reports.push_back(std::move(rep));
    }
}

ScheduleExplorer::RunOutcome
ScheduleExplorer::executeStack()
{
    Simulator sim;
    Policy pol(*this);
    sim.setPolicy(&pol);
    sim.setStepBudget(opts_.stepBudget);
    workload_(sim);
    RunOutcome out;
    out.choices = pol.choices();
    decisions_.inc(pol.depth());
    collectReports(sim, out);
    return out;
}

ScheduleExplorer::RunOutcome
ScheduleExplorer::runOnce(const std::vector<uint32_t> &prefix)
{
    Simulator sim;
    RecordReplayPolicy pol(prefix);
    sim.setPolicy(&pol);
    sim.setStepBudget(opts_.stepBudget);
    workload_(sim);
    RunOutcome out;
    out.choices = pol.recorded();
    collectReports(sim, out);
    return out;
}

bool
ScheduleExplorer::advance()
{
    while (!stack_.empty()) {
        Node &n = stack_.back();
        n.sleep.insert(n.altIds[n.chosen]);
        size_t next = n.altIds.size();
        for (size_t i = 0; i < n.altIds.size(); ++i) {
            if (n.sleep.count(n.altIds[i]) == 0) {
                next = i;
                break;
            }
        }
        if (next < n.altIds.size()) {
            n.chosen = next;
            ++n.explored;
            return true;
        }
        // Node exhausted: everything still unexplored was pruned.
        sleepSkips_.inc(n.altIds.size() - n.explored);
        stack_.pop_back();
    }
    return false;
}

std::vector<uint32_t>
ScheduleExplorer::shrinkPrefix(const std::vector<uint32_t> &full,
                               const std::string &sig)
{
    uint64_t budget = opts_.maxShrinkRuns;
    for (size_t k = 0; k <= full.size(); ++k) {
        if (budget == 0) {
            break;
        }
        --budget;
        shrinkRuns_.inc();
        std::vector<uint32_t> prefix(full.begin(), full.begin() + k);
        RunOutcome out = runOnce(prefix);
        for (const HangReport &rep : out.reports) {
            if (rep.signature() == sig) {
                return prefix;
            }
        }
    }
    return full;
}

ExploreResult
ScheduleExplorer::explore()
{
    ExploreResult res;
    std::set<std::string> seen;
    stack_.clear();
    for (;;) {
        if (res.schedules >= opts_.maxSchedules) {
            res.capped = true;
            break;
        }
        RunOutcome out = executeStack();
        ++res.schedules;
        schedules_.inc();
        res.maxDepth = std::max(res.maxDepth,
                                static_cast<uint64_t>(stack_.size()));
        if (res.schedules == 1) {
            res.firstDigest = out.digest;
        }
        for (const HangReport &rep : out.reports) {
            std::string sig = rep.signature();
            if (!seen.insert(sig).second) {
                continue;
            }
            findings_.inc();
            if (res.findings.size() >= opts_.maxFindings) {
                continue;
            }
            ExplorerFinding f;
            f.report = rep;
            f.schedule = res.schedules - 1;
            f.choices = out.choices;
            f.digest = out.digest;
            f.shrunk = opts_.shrink ? shrinkPrefix(out.choices, sig)
                                    : out.choices;
            res.findings.push_back(std::move(f));
        }
        if (!advance()) {
            res.exhausted = true;
            break;
        }
    }
    res.decisions = decisions_.value();
    res.sleepSkips = sleepSkips_.value();
    return res;
}

} // namespace remora::sim
