#include "sim/cpu.h"

#include <algorithm>

#include "util/panic.h"

namespace remora::sim {

const char *
cpuCategoryName(CpuCategory cat)
{
    switch (cat) {
      case CpuCategory::kDataReceive: return "data_receive";
      case CpuCategory::kControlTransfer: return "control_transfer";
      case CpuCategory::kProcInvoke: return "proc_invoke";
      case CpuCategory::kDataReply: return "data_reply";
      case CpuCategory::kProcExec: return "proc_exec";
      case CpuCategory::kOther: return "other";
      case CpuCategory::kNumCategories: break;
    }
    return "unknown";
}

CpuResource::CpuResource(Simulator &sim, std::string name)
    : sim_(sim), name_(std::move(name))
{}

void
CpuResource::post(Duration cost, CpuCategory cat, Simulator::Callback fn)
{
    REMORA_ASSERT(cost >= 0);
    Time start = std::max(sim_.now(), busyUntil_);
    Time end = start + cost;
    busyUntil_ = end;
    totalBusy_ += cost;
    byCategory_[static_cast<size_t>(cat)] += cost;
    // Always schedule the completion instant, even without a callback:
    // draining the event queue then means draining the CPU too, so
    // simulated time never lags behind committed work.
    if (fn) {
        sim_.scheduleAt(end, std::move(fn));
    } else if (cost > 0) {
        sim_.scheduleAt(end, [] {});
    }
}

Task<void>
CpuResource::use(Duration cost, CpuCategory cat)
{
    Promise<void> done(sim_);
    post(cost, cat, [done]() mutable { done.set(); });
    co_await done.future();
}

Duration
CpuResource::busyIn(CpuCategory cat) const
{
    return byCategory_[static_cast<size_t>(cat)];
}

double
CpuResource::utilizationSince(Time since) const
{
    Time now = sim_.now();
    if (now <= since) {
        return 0.0;
    }
    return static_cast<double>(totalBusy_) / static_cast<double>(now - since);
}

void
CpuResource::resetAccounting()
{
    totalBusy_ = 0;
    std::fill(std::begin(byCategory_), std::end(byCategory_), Duration{0});
}

} // namespace remora::sim
