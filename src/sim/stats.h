/**
 * @file
 * Statistics collection: counters, accumulators, histograms, registry.
 *
 * Components own their stats objects and optionally register them with a
 * StatRegistry for uniform dumping. The benches print their own tables,
 * but tests and examples use the registry to inspect simulation state.
 */
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace remora::sim {

/** Monotonically increasing event counter. */
class Counter
{
  public:
    /** Add @p n to the counter. */
    void inc(uint64_t n = 1) { value_ += n; }

    /** Current value. */
    uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** Streaming min/max/mean/variance accumulator (Welford). */
class Accumulator
{
  public:
    /** Record one observation. */
    void sample(double x);

    /** Number of observations. */
    uint64_t count() const { return count_; }

    /** Sum of observations. */
    double sum() const { return sum_; }

    /** Minimum observation (+inf when empty). */
    double min() const { return min_; }

    /** Maximum observation (-inf when empty). */
    double max() const { return max_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sample variance (0 for fewer than two observations). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Forget all observations. */
    void reset() { *this = Accumulator(); }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width linear histogram with under/overflow buckets.
 *
 * Bucket i covers [lo + i*width, lo + (i+1)*width).
 */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the first regular bucket.
     * @param width Width of each regular bucket (> 0).
     * @param buckets Number of regular buckets (> 0).
     */
    Histogram(double lo, double width, size_t buckets);

    /**
     * Record one observation. NaN observations are rejected (counted in
     * nanSamples(), excluded from total()); infinities land in the
     * under/overflow buckets.
     */
    void sample(double x);

    /** Count in regular bucket @p i. */
    uint64_t bucketCount(size_t i) const { return counts_.at(i); }

    /** Inclusive lower edge of regular bucket @p i. */
    double bucketLo(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

    /** Observations below the first bucket. */
    uint64_t underflow() const { return underflow_; }

    /** Observations at/above the last bucket's upper edge. */
    uint64_t overflow() const { return overflow_; }

    /** Observations outside the regular buckets (under + over). */
    uint64_t outOfRange() const { return underflow_ + overflow_; }

    /** NaN observations rejected by sample(). */
    uint64_t nanSamples() const { return nan_; }

    /** Total (non-NaN) observations. */
    uint64_t total() const { return total_; }

    /** Smallest observation (0 when empty). */
    double observedMin() const { return total_ ? min_ : 0.0; }

    /** Largest observation (0 when empty). */
    double observedMax() const { return total_ ? max_ : 0.0; }

    /** Number of regular buckets. */
    size_t buckets() const { return counts_.size(); }

    /**
     * Value at or below which fraction @p q of observations fall,
     * interpolated within buckets. The tails use the observed extremes:
     * quantiles landing in the underflow region return observedMin(),
     * and those in the overflow region interpolate between the top
     * bucket edge and observedMax(), so p99.9 stays meaningful even
     * when the tail escapes the bucketed range. Requires 0 <= q <= 1
     * and total() > 0.
     */
    double quantile(double q) const;

    /** Forget all observations. */
    void reset();

  private:
    double lo_;
    double width_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t nan_ = 0;
    uint64_t total_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Name → renderer registry for dumping simulation state.
 *
 * Stats register a closure that renders their current value; dump()
 * emits "name value" lines in lexicographic name order, and dumpJson()
 * emits one JSON object keyed by name with typed value objects.
 */
class StatRegistry
{
  public:
    using Renderer = std::string (*)(const void *);

    /** Register a counter under @p name; it must outlive the registry use. */
    void add(const std::string &name, const Counter &c);

    /** Register an accumulator under @p name. */
    void add(const std::string &name, const Accumulator &a);

    /** Register a histogram under @p name. */
    void add(const std::string &name, const Histogram &h);

    /** Render all registered stats, one per line, sorted by name. */
    std::string dump() const;

    /** Render all registered stats as one JSON object keyed by name. */
    std::string dumpJson() const;

    /** Number of registered stats. */
    size_t size() const { return entries_.size(); }

  private:
    struct EntryRef
    {
        const void *object;
        Renderer render;
        Renderer renderJson;
    };
    std::map<std::string, EntryRef> entries_;
};

} // namespace remora::sim
