/**
 * @file
 * Simulated time: 64-bit signed nanoseconds.
 *
 * All latencies in the paper are microsecond-scale, so nanosecond ticks
 * give three digits of headroom below the smallest calibrated cost while
 * int64 still covers ~292 years of simulated time.
 */
#pragma once

#include <cstdint>

namespace remora::sim {

/** Absolute simulated time in nanoseconds since simulation start. */
using Time = int64_t;

/** A span of simulated time in nanoseconds. */
using Duration = int64_t;

/** One nanosecond. */
inline constexpr Duration kNanosecond = 1;
/** One microsecond. */
inline constexpr Duration kMicrosecond = 1000;
/** One millisecond. */
inline constexpr Duration kMillisecond = 1000 * 1000;
/** One second. */
inline constexpr Duration kSecond = 1000ll * 1000 * 1000;

/** Sentinel "end of time" for run-until limits. */
inline constexpr Time kTimeMax = INT64_MAX;

/** Construct a duration from (possibly fractional) microseconds. */
constexpr Duration
usec(double us)
{
    return static_cast<Duration>(us * 1000.0 + (us >= 0 ? 0.5 : -0.5));
}

/** Construct a duration from (possibly fractional) milliseconds. */
constexpr Duration
msec(double ms)
{
    return usec(ms * 1000.0);
}

/** Convert a duration to fractional microseconds (for reporting). */
constexpr double
toUsec(Duration d)
{
    return static_cast<double>(d) / 1000.0;
}

/** Convert a duration to fractional milliseconds (for reporting). */
constexpr double
toMsec(Duration d)
{
    return static_cast<double>(d) / 1e6;
}

} // namespace remora::sim
