/**
 * @file
 * C++20 coroutine integration with the discrete-event simulator.
 *
 * Simulated application code (clients, clerks, servers) is written as
 * Task<T> coroutines so that multi-step protocols read linearly while
 * the layers beneath remain event-callback driven. Three pieces:
 *
 *  - Task<T>: an eagerly-started coroutine. Awaiting it yields its
 *    result; destroying the handle while it still runs detaches it
 *    (fire-and-forget), which is the normal mode for top-level
 *    simulated processes.
 *  - Delay: `co_await sim.delay(d)` suspends for simulated time d.
 *  - Promise<T>/Future<T>: a one-shot rendezvous bridging callback-world
 *    completions (NIC interrupts, CPU grants) into coroutine-world.
 *
 * Resumptions are funneled through the simulator's event queue (never
 * inline from set()), so coroutine wakeup order is governed by the same
 * deterministic (time, insertion) order as every other event.
 */
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <utility>

#include "sim/simulator.h"
#include "util/panic.h"

namespace remora::sim {

template <typename T>
class Task;

namespace detail {

/** State shared by all Task promise specializations. */
struct TaskPromiseBase
{
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;
    bool detached = false;

    std::suspend_never initial_suspend() noexcept { return {}; }

    void unhandled_exception() noexcept { exception = std::current_exception(); }

    /**
     * At final suspend: transfer control to an awaiting coroutine if one
     * exists; destroy the frame if the task was detached; otherwise stay
     * suspended so the owning Task destructor reaps the frame.
     */
    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            TaskPromiseBase &p = h.promise();
            if (p.continuation) {
                return p.continuation;
            }
            if (p.detached) {
                if (p.exception) {
                    // A detached simulated process died with an uncaught
                    // exception; nothing can observe it, so fail loudly.
                    REMORA_PANIC("detached sim::Task terminated with "
                                 "an unhandled exception");
                }
                h.destroy();
            }
            return std::noop_coroutine();
        }

        void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }
};

template <typename T>
struct TaskPromise : TaskPromiseBase
{
    std::optional<T> value;

    Task<T> get_return_object();

    void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct TaskPromise<void> : TaskPromiseBase
{
    Task<void> get_return_object();

    void return_void() {}
};

} // namespace detail

/**
 * An eagerly-started simulation coroutine returning T.
 *
 * The coroutine body begins executing when called. The returned Task is
 * a move-only owner of the coroutine frame:
 *
 *  - `co_await task` suspends the caller until the task finishes and
 *    yields its value (rethrowing any stored exception);
 *  - letting the Task go out of scope while still running detaches the
 *    coroutine, which keeps running to completion on its own.
 *
 * @tparam T Result type produced with co_return.
 */
template <typename T = void>
class [[nodiscard]] Task
{
  public:
    using promise_type = detail::TaskPromise<T>;
    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}

    Task(Task &&other) noexcept : handle_(std::exchange(other.handle_, {})) {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            release();
            handle_ = std::exchange(other.handle_, {});
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { release(); }

    /** True once the coroutine has run to completion. */
    bool done() const { return !handle_ || handle_.done(); }

    /**
     * Explicitly relinquish ownership, letting the coroutine finish (or
     * have finished) on its own. Equivalent to destruction but makes
     * fire-and-forget intent visible at the call site.
     */
    void detach() { release(); }

    /** Awaiter giving `co_await task` semantics. */
    struct Awaiter
    {
        Handle handle;

        bool await_ready() const noexcept { return handle.done(); }

        void
        await_suspend(std::coroutine_handle<> cont) noexcept
        {
            REMORA_ASSERT(!handle.promise().continuation);
            handle.promise().continuation = cont;
        }

        T
        await_resume()
        {
            auto &p = handle.promise();
            if (p.exception) {
                std::rethrow_exception(p.exception);
            }
            if constexpr (!std::is_void_v<T>) {
                return std::move(*p.value);
            }
        }
    };

    /** Await completion of this task. */
    Awaiter
    operator co_await() const noexcept
    {
        REMORA_ASSERT(handle_);
        return Awaiter{handle_};
    }

    /**
     * Fetch the result of an already-completed task without awaiting
     * (useful from non-coroutine test code after sim.run()).
     */
    T
    result() const
    {
        REMORA_ASSERT(handle_ && handle_.done());
        auto &p = handle_.promise();
        if (p.exception) {
            std::rethrow_exception(p.exception);
        }
        if constexpr (!std::is_void_v<T>) {
            return std::move(*p.value);
        }
    }

  private:
    void
    release()
    {
        if (!handle_) {
            return;
        }
        if (handle_.done()) {
            handle_.destroy();
        } else {
            handle_.promise().detached = true;
        }
        handle_ = {};
    }

    Handle handle_{};
};

namespace detail {

template <typename T>
Task<T>
TaskPromise<T>::get_return_object()
{
    return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void>
TaskPromise<void>::get_return_object()
{
    return Task<void>(
        std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

/** Shared state of a one-shot Promise/Future pair. */
template <typename T>
struct OneShotState
{
    Simulator *sim = nullptr;
    std::optional<T> value;
    std::exception_ptr exception;
    std::coroutine_handle<> waiter;

    bool ready() const { return value.has_value() || exception; }

    void
    park(std::coroutine_handle<> h)
    {
        waiter = h;
        // A parked await with no wakeup pending at quiescence is a
        // coroutine blocked forever; the wait graph tells them apart.
        sim->waitGraph().parked(this, "future.wait (one-shot rendezvous)",
                                false);
    }

    void
    wake()
    {
        if (!waiter) {
            return;
        }
        sim->waitGraph().unparked(this);
        auto h = std::exchange(waiter, {});
        sim->schedule(0, [h] { h.resume(); });
    }
};

/** Specialization for valueless rendezvous. */
template <>
struct OneShotState<void>
{
    Simulator *sim = nullptr;
    bool done = false;
    std::exception_ptr exception;
    std::coroutine_handle<> waiter;

    bool ready() const { return done || exception; }

    void
    park(std::coroutine_handle<> h)
    {
        waiter = h;
        sim->waitGraph().parked(this, "future.wait (one-shot rendezvous)",
                                false);
    }

    void
    wake()
    {
        if (!waiter) {
            return;
        }
        sim->waitGraph().unparked(this);
        auto h = std::exchange(waiter, {});
        sim->schedule(0, [h] { h.resume(); });
    }
};

} // namespace detail

/**
 * Awaitable one-shot value, completed by the matching Promise<T>.
 *
 * A Future may be awaited by at most one coroutine. Awaiting after
 * completion resumes immediately; awaiting before completion suspends
 * until Promise::set runs, with resumption ordered through the event
 * queue at the completion instant.
 */
template <typename T>
class Future
{
  public:
    Future() = default;
    explicit Future(std::shared_ptr<detail::OneShotState<T>> st)
        : state_(std::move(st))
    {}

    /** True once a value (or error) has been delivered. */
    bool ready() const { return state_ && state_->ready(); }

    struct Awaiter
    {
        detail::OneShotState<T> *st;

        bool await_ready() const noexcept { return st->ready(); }

        void
        await_suspend(std::coroutine_handle<> h) noexcept
        {
            REMORA_ASSERT(!st->waiter);
            st->park(h);
        }

        T
        await_resume()
        {
            if (st->exception) {
                std::rethrow_exception(st->exception);
            }
            return std::move(*st->value);
        }
    };

    /** Await delivery of the value. */
    Awaiter
    operator co_await() const noexcept
    {
        REMORA_ASSERT(state_);
        return Awaiter{state_.get()};
    }

  private:
    std::shared_ptr<detail::OneShotState<T>> state_;
};

/**
 * Producer side of a one-shot rendezvous.
 *
 * Created against a Simulator; hand the future() to a coroutine and call
 * set() (once) from callback code when the awaited condition occurs.
 */
template <typename T>
class Promise
{
  public:
    /** Create a fresh one-shot channel on @p sim. */
    explicit Promise(Simulator &sim)
        : state_(std::make_shared<detail::OneShotState<T>>())
    {
        state_->sim = &sim;
    }

    /** The awaitable consumer side. */
    Future<T> future() const { return Future<T>(state_); }

    /** Deliver the value; must be called at most once. */
    void
    set(T value)
    {
        REMORA_ASSERT(!state_->ready());
        state_->value.emplace(std::move(value));
        state_->wake();
    }

    /** Deliver an error instead of a value; must be called at most once. */
    void
    setException(std::exception_ptr e)
    {
        REMORA_ASSERT(!state_->ready());
        state_->exception = e;
        state_->wake();
    }

    /** True once set/setException has run. */
    bool fulfilled() const { return state_->ready(); }

  private:
    std::shared_ptr<detail::OneShotState<T>> state_;
};

/** Valueless Future: completion-only signalling. */
template <>
class Future<void>
{
  public:
    Future() = default;
    explicit Future(std::shared_ptr<detail::OneShotState<void>> st)
        : state_(std::move(st))
    {}

    /** True once completion (or error) has been delivered. */
    bool ready() const { return state_ && state_->ready(); }

    struct Awaiter
    {
        detail::OneShotState<void> *st;

        bool await_ready() const noexcept { return st->ready(); }

        void
        await_suspend(std::coroutine_handle<> h) noexcept
        {
            REMORA_ASSERT(!st->waiter);
            st->park(h);
        }

        void
        await_resume()
        {
            if (st->exception) {
                std::rethrow_exception(st->exception);
            }
        }
    };

    /** Await completion. */
    Awaiter
    operator co_await() const noexcept
    {
        REMORA_ASSERT(state_);
        return Awaiter{state_.get()};
    }

  private:
    std::shared_ptr<detail::OneShotState<void>> state_;
};

/** Valueless Promise: completion-only signalling. */
template <>
class Promise<void>
{
  public:
    /** Create a fresh one-shot channel on @p sim. */
    explicit Promise(Simulator &sim)
        : state_(std::make_shared<detail::OneShotState<void>>())
    {
        state_->sim = &sim;
    }

    /** The awaitable consumer side. */
    Future<void> future() const { return Future<void>(state_); }

    /** Signal completion; must be called at most once. */
    void
    set()
    {
        REMORA_ASSERT(!state_->ready());
        state_->done = true;
        state_->wake();
    }

    /** Deliver an error instead; must be called at most once. */
    void
    setException(std::exception_ptr e)
    {
        REMORA_ASSERT(!state_->ready());
        state_->exception = e;
        state_->wake();
    }

    /** True once set/setException has run. */
    bool fulfilled() const { return state_->ready(); }

  private:
    std::shared_ptr<detail::OneShotState<void>> state_;
};

/** Awaitable that suspends a coroutine for simulated time. */
struct Delay
{
    Simulator &sim;
    Duration duration;

    bool await_ready() const noexcept { return duration <= 0; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        sim.schedule(duration, [h] { h.resume(); });
    }

    void await_resume() const noexcept {}
};

/** Convenience factory: `co_await delay(sim, usec(10))`. */
inline Delay
delay(Simulator &sim, Duration d)
{
    return Delay{sim, d};
}

} // namespace remora::sim
