/**
 * @file
 * The discrete-event simulation engine.
 *
 * A Simulator owns a time-ordered event queue and the current simulated
 * clock. Components schedule callbacks at future instants; run() pops
 * events in (time, insertion) order until the queue drains or a limit is
 * reached. Events scheduled for the same instant execute in insertion
 * order, which makes causality deterministic and test output stable.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/determinism.h"
#include "sim/time.h"

namespace remora::sim {

/** Opaque handle identifying a scheduled event, usable for cancellation. */
using EventId = uint64_t;

/** Discrete-event scheduler and simulated clock. */
class Simulator
{
  public:
    /** Type of all event callbacks. */
    using Callback = std::function<void()>;

    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p fn to run @p delay after now.
     *
     * @param delay Non-negative delay; zero means "later this instant".
     * @param fn Callback to invoke.
     * @return Handle usable with cancel().
     */
    EventId schedule(Duration delay, Callback fn);

    /**
     * Schedule @p fn at absolute time @p when (>= now).
     *
     * @return Handle usable with cancel().
     */
    EventId scheduleAt(Time when, Callback fn);

    /**
     * Cancel a previously scheduled event.
     *
     * Cancelling an event that already ran (or was already cancelled) is
     * a harmless no-op, which lets timeout guards race completion safely.
     */
    void cancel(EventId id);

    /**
     * Run the next pending event, if any.
     *
     * @return True if an event ran, false if the queue was empty.
     */
    bool step();

    /**
     * Run events until the queue drains or simulated time would exceed
     * @p limit.
     *
     * Events at exactly @p limit still run. The clock does not advance
     * past the last executed event.
     *
     * @return Number of events executed by this call.
     */
    uint64_t run(Time limit = kTimeMax);

    /** Total events executed over the simulator's lifetime. */
    uint64_t eventsProcessed() const { return processed_; }

    /** Number of events currently pending (including cancelled ones). */
    size_t pendingEvents() const { return queue_.size(); }

    /**
     * Fold a component-level (now, kind, actor) record into the
     * determinism digest. Layers call this at protocol milestones
     * (op issued, cell delivered, request served) so the digest covers
     * semantic activity as well as raw event-queue churn.
     */
    void
    noteDigest(std::string_view kind, uint64_t actor)
    {
        digest_.mixRecord(now_, kind, actor);
    }

    /** As above, for string-identified actors (names, files). */
    void
    noteDigest(std::string_view kind, std::string_view actor)
    {
        digest_.mixU64(static_cast<uint64_t>(now_));
        digest_.mix(kind);
        digest_.mix(actor);
    }

    /**
     * The running digest of all activity: every schedule/cancel/execute
     * plus every noteDigest record. Two runs of the same workload must
     * produce equal values; see tests/test_determinism.cc.
     */
    const DeterminismDigest &digest() const { return digest_; }

  private:
    struct Entry
    {
        Time when;
        EventId id;
        // Ordered min-first by (when, id); id breaks ties by insertion.
        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    Time now_ = 0;
    EventId nextId_ = 1;
    uint64_t processed_ = 0;
    DeterminismDigest digest_;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
    // Callbacks keyed by id; erased on execution or cancellation.
    std::unordered_map<EventId, Callback> callbacks_;
};

} // namespace remora::sim
