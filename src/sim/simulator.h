/**
 * @file
 * The discrete-event simulation engine.
 *
 * A Simulator owns a time-ordered event queue and the current simulated
 * clock. Components schedule callbacks at future instants; run() pops
 * events in (time, insertion) order until the queue drains or a limit is
 * reached. Events scheduled for the same instant execute in insertion
 * order, which makes causality deterministic and test output stable.
 *
 * Same-instant ordering is *pluggable*: whenever more than one event is
 * ready at the minimal timestamp, the ready set is offered to the
 * installed SchedulePolicy, which picks the one to run. Three policies
 * ship with the engine:
 *
 *  - insertion order (the default, policy-less fast path);
 *  - PerturbPolicy (setPerturbation / REMORA_PERTURB): a seeded
 *    pseudo-random tie-break that exercises orderings the model does
 *    not enforce while staying fully deterministic per seed;
 *  - RecordReplayPolicy: records the sequence of choice indices taken
 *    at decision points, or replays a recorded choice vector — the
 *    primitive the schedule explorer (sim/explorer.h) is built on.
 *
 * Every consulted choice is folded into the DeterminismDigest, so a
 * replayed choice vector reproduces a run bit-identically.
 *
 * Events carry a dependency hint (DepHint) captured from the ambient
 * hint at schedule time: which channel, sync word, or segment range the
 * event's causal chain is acting on. Hints never affect execution; the
 * explorer uses them to prune commuting interleavings (sleep sets).
 *
 * The simulator also owns a WaitGraph (sim/waitgraph.h) fed by the
 * sync/notification layers, distinguishing "queue drained because all
 * done" from "drained with coroutines blocked forever", and halting
 * schedules that deadlock while still generating backoff-timer events.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/determinism.h"
#include "sim/time.h"
#include "sim/waitgraph.h"

namespace remora::sim {

/** Opaque handle identifying a scheduled event, usable for cancellation. */
using EventId = uint64_t;

class Simulator;

/**
 * What an event's causal chain is operating on, for commutativity
 * pruning. kNone means "unknown" and is conservatively dependent with
 * everything. Channel hints are keyed by channel identity; memory hints
 * (sync words, segment ranges) by packed (node, segment) plus a byte
 * range, so a sync word and a data write to the same word conflict.
 */
struct DepHint
{
    enum class Kind : uint8_t
    {
        kNone = 0,
        kChannel,
        kSyncWord,
        kSegRange,
    };

    Kind kind = Kind::kNone;
    uint64_t key = 0;
    uint32_t lo = 0;
    uint32_t hi = 0;

    /** Hint for a notification-channel operation. */
    static DepHint
    channel(uint64_t key)
    {
        return DepHint{Kind::kChannel, key, 0, 0};
    }

    /** Hint for a sync-word access (the aligned 4-byte word at offset). */
    static DepHint
    syncWord(uint64_t key, uint32_t offset)
    {
        return DepHint{Kind::kSyncWord, key, offset, offset + 4};
    }

    /** Hint for a data access to [lo, hi) of a segment. */
    static DepHint
    segRange(uint64_t key, uint32_t lo, uint32_t hi)
    {
        return DepHint{Kind::kSegRange, key, lo, hi};
    }

    /** True when the hint names a specific object. */
    bool known() const { return kind != Kind::kNone; }

    /**
     * May the two hinted operations fail to commute? Unknown hints are
     * always dependent; channel ops conflict on the same channel; memory
     * ops conflict when their byte ranges overlap in the same segment.
     */
    static bool
    dependent(const DepHint &a, const DepHint &b)
    {
        if (a.kind == Kind::kNone || b.kind == Kind::kNone) {
            return true;
        }
        bool achan = a.kind == Kind::kChannel;
        bool bchan = b.kind == Kind::kChannel;
        if (achan != bchan) {
            return false;
        }
        if (achan) {
            return a.key == b.key;
        }
        return a.key == b.key && a.lo < b.hi && b.lo < a.hi;
    }
};

/** One runnable alternative offered to a SchedulePolicy. */
struct ReadyChoice
{
    EventId id = 0;
    DepHint hint;
};

/**
 * Same-instant tie-break strategy. choose() is consulted only when two
 * or more events are ready at the minimal timestamp (a *decision
 * point*); the ready set is ordered by insertion (EventId ascending).
 */
class SchedulePolicy
{
  public:
    virtual ~SchedulePolicy() = default;

    /** Pick the index of the event to run next. */
    virtual size_t choose(Simulator &sim,
                          const std::vector<ReadyChoice> &ready) = 0;
};

/**
 * The seeded pseudo-random tie-break behind setPerturbation: runs the
 * ready event with the smallest splitmix64-mixed key, reproducing the
 * historical perturbed total order exactly.
 */
class PerturbPolicy final : public SchedulePolicy
{
  public:
    explicit PerturbPolicy(uint64_t seed) : seed_(seed) {}

    size_t choose(Simulator &sim,
                  const std::vector<ReadyChoice> &ready) override;

  private:
    uint64_t seed_;
};

/**
 * Replay a recorded choice vector, then fall through to a fallback
 * chooser (insertion order when none given). Records every choice it
 * makes, so a partial prefix extends into a full replayable vector.
 */
class RecordReplayPolicy final : public SchedulePolicy
{
  public:
    /** Chooser for decision points beyond the prefix. */
    using Fallback =
        std::function<size_t(const std::vector<ReadyChoice> &, size_t depth)>;

    explicit RecordReplayPolicy(std::vector<uint32_t> prefix = {},
                                Fallback fallback = {})
        : prefix_(std::move(prefix)), fallback_(std::move(fallback))
    {}

    size_t choose(Simulator &sim,
                  const std::vector<ReadyChoice> &ready) override;

    /** Every choice made so far (prefix + fallback choices). */
    const std::vector<uint32_t> &recorded() const { return recorded_; }

    /** Decision points consumed so far. */
    size_t depth() const { return depth_; }

  private:
    std::vector<uint32_t> prefix_;
    Fallback fallback_;
    std::vector<uint32_t> recorded_;
    size_t depth_ = 0;
};

/** Discrete-event scheduler and simulated clock. */
class Simulator
{
  public:
    /** Type of all event callbacks. */
    using Callback = std::function<void()>;

    /** Applies the REMORA_PERTURB environment seed when set. */
    Simulator();
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p fn to run @p delay after now.
     *
     * The event inherits the ambient dependency hint (see HintScope).
     *
     * @param delay Non-negative delay; zero means "later this instant".
     * @param fn Callback to invoke.
     * @return Handle usable with cancel().
     */
    EventId schedule(Duration delay, Callback fn);

    /**
     * Schedule @p fn at absolute time @p when (>= now).
     *
     * @return Handle usable with cancel().
     */
    EventId scheduleAt(Time when, Callback fn);

    /**
     * Cancel a previously scheduled event.
     *
     * Cancelling an event that already ran (or was already cancelled) is
     * a harmless no-op, which lets timeout guards race completion safely.
     */
    void cancel(EventId id);

    /**
     * Run the next pending event, if any.
     *
     * @return True if an event ran; false when the queue is empty, the
     *         step budget is exhausted, or a deadlock halted the run.
     */
    bool step();

    /**
     * Run events until the queue drains, simulated time would exceed
     * @p limit, the step budget runs out, or a detected deadlock halts
     * execution.
     *
     * Events at exactly @p limit still run. The clock does not advance
     * past the last executed event.
     *
     * @return Number of events executed by this call.
     */
    uint64_t run(Time limit = kTimeMax);

    /** Total events executed over the simulator's lifetime. */
    uint64_t eventsProcessed() const { return processed_; }

    /** Number of events currently pending (including cancelled ones). */
    size_t pendingEvents() const { return queue_.size(); }

    /** Pending events that are still live (not cancelled). */
    size_t livePendingEvents() const { return callbacks_.size(); }

    /**
     * Fold a component-level (now, kind, actor) record into the
     * determinism digest. Layers call this at protocol milestones
     * (op issued, cell delivered, request served) so the digest covers
     * semantic activity as well as raw event-queue churn.
     */
    void
    noteDigest(std::string_view kind, uint64_t actor)
    {
        digest_.mixRecord(now_, kind, actor);
    }

    /** As above, for string-identified actors (names, files). */
    void
    noteDigest(std::string_view kind, std::string_view actor)
    {
        digest_.mixU64(static_cast<uint64_t>(now_));
        digest_.mix(kind);
        digest_.mix(actor);
    }

    /**
     * The running digest of all activity: every schedule/cancel/execute
     * plus every noteDigest record and every policy choice. Two runs of
     * the same workload must produce equal values; see
     * tests/test_determinism.cc.
     */
    const DeterminismDigest &digest() const { return digest_; }

    /**
     * Set the schedule-perturbation seed. Zero (the default) restores
     * exact insertion-order tie-breaking — bit-identical to a simulator
     * that never called this. A non-zero seed reorders same-timestamp
     * events pseudo-randomly (deterministically per seed) and folds a
     * "perturb" record into the digest so perturbed and unperturbed
     * runs can never be confused.
     *
     * Must be called before any event is scheduled, so a run's whole
     * schedule is governed by one seed.
     */
    void setPerturbation(uint64_t seed);

    /** The active perturbation seed (0 = insertion order). */
    uint64_t perturbation() const { return perturbSeed_; }

    /**
     * Install @p policy (borrowed, not owned) as the same-instant
     * tie-break; replaces any perturbation policy. nullptr restores
     * insertion order.
     */
    void setPolicy(SchedulePolicy *policy);

    /** The active policy (nullptr = insertion order). */
    SchedulePolicy *policy() const { return policy_; }

    /** Decision points hit so far (ready sets with >= 2 events). */
    uint64_t decisionPoints() const { return decisions_; }

    /**
     * Cap the number of further step()s this simulator will execute
     * (0 = unlimited). Exploration uses this to cut off runaway or
     * livelocked schedules.
     */
    void setStepBudget(uint64_t steps);

    /** True when the step budget stopped execution with events pending. */
    bool budgetExhausted() const { return budgetHit_; }

    /**
     * When true (the default), step() refuses to run once the wait-for
     * graph records a deadlock cycle — spinning lock acquisitions keep
     * the queue busy forever otherwise.
     */
    void setHaltOnDeadlock(bool halt) { haltOnDeadlock_ = halt; }

    /** True when a detected deadlock stopped execution. */
    bool deadlockHalted() const;

    /** The wait-for graph fed by the sync and notification layers. */
    WaitGraph &waitGraph() { return graph_; }
    const WaitGraph &waitGraph() const { return graph_; }

    /**
     * Coroutines parked with no wakeup pending, excluding daemon
     * service loops. A drained queue with this non-zero means "blocked
     * forever", not "all done" — tests assert zero at teardown.
     */
    size_t blockedTaskCount() const { return graph_.blockedCount(); }

    /**
     * True when the run genuinely completed: no live events pending and
     * no coroutine blocked forever.
     */
    bool
    allDone() const
    {
        return callbacks_.empty() && blockedTaskCount() == 0;
    }

    /** The ambient dependency hint inherited by scheduled events. */
    const DepHint &currentHint() const { return currentHint_; }

    /**
     * Override the ambient dependency hint for a scope. Events
     * scheduled inside the scope — and, transitively, events scheduled
     * while *they* execute — carry @p hint. Use only in non-coroutine
     * callback contexts: a scope held across co_await would leak the
     * hint to unrelated events.
     */
    class HintScope
    {
      public:
        HintScope(Simulator &sim, const DepHint &hint)
            : sim_(sim), prev_(sim.currentHint_)
        {
            sim.currentHint_ = hint;
        }
        HintScope(const HintScope &) = delete;
        HintScope &operator=(const HintScope &) = delete;
        ~HintScope() { sim_.currentHint_ = prev_; }

      private:
        Simulator &sim_;
        DepHint prev_;
    };

  private:
    struct Entry
    {
        Time when;
        EventId id;
        // Ordered min-first by (when, id): insertion order per instant.
        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    struct PendingEvent
    {
        Callback fn;
        DepHint hint;
    };

    Time now_ = 0;
    EventId nextId_ = 1;
    uint64_t processed_ = 0;
    uint64_t perturbSeed_ = 0;
    uint64_t decisions_ = 0;
    uint64_t stepBudgetEnd_ = 0; ///< processed_ ceiling; 0 = unlimited.
    bool budgetHit_ = false;
    bool haltOnDeadlock_ = true;
    DeterminismDigest digest_;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
    // Callbacks keyed by id; erased on execution or cancellation.
    std::unordered_map<EventId, PendingEvent> callbacks_;
    SchedulePolicy *policy_ = nullptr;
    std::unique_ptr<PerturbPolicy> ownedPerturb_;
    DepHint currentHint_;
    WaitGraph graph_;
    // Scratch buffers reused across step() calls.
    std::vector<Entry> batch_;
    std::vector<ReadyChoice> ready_;
};

} // namespace remora::sim
