/**
 * @file
 * The discrete-event simulation engine.
 *
 * A Simulator owns a time-ordered event queue and the current simulated
 * clock. Components schedule callbacks at future instants; run() pops
 * events in (time, insertion) order until the queue drains or a limit is
 * reached. Events scheduled for the same instant execute in insertion
 * order, which makes causality deterministic and test output stable.
 *
 * Schedule perturbation (setPerturbation / REMORA_PERTURB) deliberately
 * weakens the same-instant tie-break: with a non-zero seed, events that
 * share a timestamp execute in a seeded pseudo-random order instead of
 * insertion order. Cross-timestamp ordering is untouched, so causality
 * through simulated time is preserved while every ordering the model
 * does not enforce gets exercised — the schedules the race detector
 * (rmem/race_detector.h) needs to drive conflicting accesses into each
 * other. A given seed is still fully deterministic (the seed is folded
 * into the digest), so perturbed runs replay bit-identically too.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/determinism.h"
#include "sim/time.h"

namespace remora::sim {

/** Opaque handle identifying a scheduled event, usable for cancellation. */
using EventId = uint64_t;

/** Discrete-event scheduler and simulated clock. */
class Simulator
{
  public:
    /** Type of all event callbacks. */
    using Callback = std::function<void()>;

    /** Applies the REMORA_PERTURB environment seed when set. */
    Simulator();
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p fn to run @p delay after now.
     *
     * @param delay Non-negative delay; zero means "later this instant".
     * @param fn Callback to invoke.
     * @return Handle usable with cancel().
     */
    EventId schedule(Duration delay, Callback fn);

    /**
     * Schedule @p fn at absolute time @p when (>= now).
     *
     * @return Handle usable with cancel().
     */
    EventId scheduleAt(Time when, Callback fn);

    /**
     * Cancel a previously scheduled event.
     *
     * Cancelling an event that already ran (or was already cancelled) is
     * a harmless no-op, which lets timeout guards race completion safely.
     */
    void cancel(EventId id);

    /**
     * Run the next pending event, if any.
     *
     * @return True if an event ran, false if the queue was empty.
     */
    bool step();

    /**
     * Run events until the queue drains or simulated time would exceed
     * @p limit.
     *
     * Events at exactly @p limit still run. The clock does not advance
     * past the last executed event.
     *
     * @return Number of events executed by this call.
     */
    uint64_t run(Time limit = kTimeMax);

    /** Total events executed over the simulator's lifetime. */
    uint64_t eventsProcessed() const { return processed_; }

    /** Number of events currently pending (including cancelled ones). */
    size_t pendingEvents() const { return queue_.size(); }

    /**
     * Fold a component-level (now, kind, actor) record into the
     * determinism digest. Layers call this at protocol milestones
     * (op issued, cell delivered, request served) so the digest covers
     * semantic activity as well as raw event-queue churn.
     */
    void
    noteDigest(std::string_view kind, uint64_t actor)
    {
        digest_.mixRecord(now_, kind, actor);
    }

    /** As above, for string-identified actors (names, files). */
    void
    noteDigest(std::string_view kind, std::string_view actor)
    {
        digest_.mixU64(static_cast<uint64_t>(now_));
        digest_.mix(kind);
        digest_.mix(actor);
    }

    /**
     * The running digest of all activity: every schedule/cancel/execute
     * plus every noteDigest record. Two runs of the same workload must
     * produce equal values; see tests/test_determinism.cc.
     */
    const DeterminismDigest &digest() const { return digest_; }

    /**
     * Set the schedule-perturbation seed. Zero (the default) restores
     * exact insertion-order tie-breaking — bit-identical to a simulator
     * that never called this. A non-zero seed reorders same-timestamp
     * events pseudo-randomly (deterministically per seed) and folds a
     * "perturb" record into the digest so perturbed and unperturbed
     * runs can never be confused.
     *
     * Must be called before any event is scheduled: changing the
     * tie-break key function with entries already heaped would corrupt
     * the priority queue's invariant.
     */
    void setPerturbation(uint64_t seed);

    /** The active perturbation seed (0 = insertion order). */
    uint64_t perturbation() const { return perturbSeed_; }

  private:
    struct Entry
    {
        Time when;
        /** Tie-break key: the id itself, or its seeded hash. */
        uint64_t key;
        EventId id;
        // Ordered min-first by (when, key, id); with a zero seed the
        // key equals the id, i.e. exact insertion order.
        bool
        operator>(const Entry &o) const
        {
            if (when != o.when) {
                return when > o.when;
            }
            return key != o.key ? key > o.key : id > o.id;
        }
    };

    /** Same-instant ordering key for a fresh event. */
    uint64_t tieKey(EventId id) const;

    Time now_ = 0;
    EventId nextId_ = 1;
    uint64_t processed_ = 0;
    uint64_t perturbSeed_ = 0;
    DeterminismDigest digest_;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
    // Callbacks keyed by id; erased on execution or cancellation.
    std::unordered_map<EventId, Callback> callbacks_;
};

} // namespace remora::sim
