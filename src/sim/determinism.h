/**
 * @file
 * The determinism digest: a running hash of everything the simulator
 * does, so two runs of the same workload can be proven bit-identical.
 *
 * The static side of this property is enforced by remora-lint (no
 * wall-clock, no platform randomness, no coroutine parameters that
 * dangle across suspension); the digest is the dynamic backstop. The
 * Simulator folds every scheduled, executed, and cancelled event into
 * an FNV-1a hash as it happens, and components fold in their own
 * (time, kind, actor) records at protocol-level milestones via
 * Simulator::noteDigest(). Any divergence between two runs — a
 * reordered wakeup, an extra retry, a different random draw — yields a
 * different digest, so a test can assert replay equality with one
 * integer compare instead of diffing traces.
 */
#pragma once

#include <cstdint>
#include <string_view>

namespace remora::sim {

/** Running FNV-1a (64-bit) accumulator over simulation activity. */
class DeterminismDigest
{
  public:
    /** FNV-1a 64-bit offset basis / prime. */
    static constexpr uint64_t kOffset = 14695981039346656037ull;
    static constexpr uint64_t kPrime = 1099511628211ull;

    /** Fold one byte. */
    void
    mixByte(uint8_t b)
    {
        hash_ = (hash_ ^ b) * kPrime;
        ++records_;
    }

    /** Fold a 64-bit value, little-endian byte order. */
    void
    mixU64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash_ = (hash_ ^ (v & 0xffu)) * kPrime;
            v >>= 8;
        }
        ++records_;
    }

    /** Fold a string (kind tags, actor names). */
    void
    mix(std::string_view s)
    {
        for (char c : s) {
            hash_ = (hash_ ^ static_cast<uint8_t>(c)) * kPrime;
        }
        ++records_;
    }

    /** Fold one (time, kind, actor) record. */
    void
    mixRecord(int64_t time, std::string_view kind, uint64_t actor)
    {
        mixU64(static_cast<uint64_t>(time));
        mix(kind);
        mixU64(actor);
    }

    /** The digest so far. */
    uint64_t value() const { return hash_; }

    /** Number of records folded in (diagnostic; not part of the hash). */
    uint64_t records() const { return records_; }

    /** Restart from the offset basis. */
    void
    reset()
    {
        hash_ = kOffset;
        records_ = 0;
    }

  private:
    uint64_t hash_ = kOffset;
    uint64_t records_ = 0;
};

} // namespace remora::sim
