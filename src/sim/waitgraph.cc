#include "sim/waitgraph.h"

#include <algorithm>
#include <sstream>

namespace remora::sim {

const char *
HangReport::kindName(Kind k)
{
    switch (k) {
    case Kind::kDeadlock:
        return "deadlock";
    case Kind::kLostWakeup:
        return "lost-wakeup";
    case Kind::kBlockedTask:
        return "blocked-task";
    case Kind::kNonQuiescent:
        return "non-quiescent";
    }
    return "?";
}

std::string
HangReport::signature() const
{
    // Canonical order makes the same cycle entered at a different edge
    // dedupe to one finding.
    std::vector<std::string> sorted = parties;
    std::sort(sorted.begin(), sorted.end());
    std::string sig = kindName(kind);
    for (const auto &p : sorted) {
        sig += '|';
        sig += p;
    }
    return sig;
}

std::string
HangReport::format() const
{
    std::ostringstream os;
    os << "HANG (" << kindName(kind) << ") at t=" << at;
    if (!detail.empty()) {
        os << " — " << detail;
    }
    os << "\n";
    for (const auto &p : parties) {
        os << "  " << p << "\n";
    }
    return os.str();
}

void
WaitGraph::acquired(Entity e, Resource r, const std::string &site)
{
    held_[r] = LockState{e, site};
}

void
WaitGraph::released(Entity e, Resource r)
{
    auto it = held_.find(r);
    if (it != held_.end() && it->second.owner == e) {
        held_.erase(it);
    }
}

bool
WaitGraph::waiting(Entity e, Resource r, const std::string &site, Time now)
{
    waiting_[e] = WaitState{r, site};

    // Follow holder -> wanted-resource -> holder edges from e; a new
    // wait edge can only close a cycle that passes through e itself.
    std::vector<Entity> chain{e};
    Resource want = r;
    for (;;) {
        auto holder = held_.find(want);
        if (holder == held_.end()) {
            return false; // nobody holds it: no cycle (yet)
        }
        Entity next = holder->second.owner;
        if (next == e) {
            break; // cycle closed
        }
        if (std::find(chain.begin(), chain.end(), next) != chain.end()) {
            return false; // cycle not through e; its own edge reported it
        }
        auto w = waiting_.find(next);
        if (w == waiting_.end()) {
            return false; // holder is runnable: no deadlock
        }
        chain.push_back(next);
        want = w->second.resource;
    }

    HangReport rep;
    rep.kind = HangReport::Kind::kDeadlock;
    rep.at = now;
    std::ostringstream detail;
    detail << chain.size() << "-party cycle";
    rep.detail = detail.str();
    for (Entity part : chain) {
        // Every chain entity has a wait edge (the walk required it).
        const WaitState &w = waiting_.at(part);
        std::ostringstream line;
        line << "entity 0x" << std::hex << part << std::dec << " waits "
             << w.site;
        auto holder = held_.find(w.resource);
        if (holder != held_.end()) {
            line << " held by 0x" << std::hex << holder->second.owner
                 << std::dec;
        }
        rep.parties.push_back(line.str());
    }
    if (!seenCycles_.insert(rep.signature()).second) {
        return false; // same cycle reported before
    }
    deadlocks_.push_back(std::move(rep));
    return true;
}

void
WaitGraph::waitDone(Entity e)
{
    waiting_.erase(e);
}

void
WaitGraph::parked(const void *who, const std::string &site, bool daemon)
{
    parked_.insert_or_assign(who, Park{site, daemon});
}

void
WaitGraph::unparked(const void *who)
{
    parked_.erase(who);
}

uint64_t
WaitGraph::channelOpen(std::string label)
{
    uint64_t id = nextChannelId_++;
    channels_.emplace(id, ChannelState{std::move(label), 0, 0, true, false});
    return id;
}

void
WaitGraph::channelLabel(uint64_t id, std::string label)
{
    auto it = channels_.find(id);
    if (it != channels_.end()) {
        it->second.label = std::move(label);
    }
}

void
WaitGraph::channelClose(uint64_t id)
{
    auto it = channels_.find(id);
    if (it != channels_.end()) {
        it->second.open = false;
        it->second.readerParked = false;
    }
}

void
WaitGraph::channelPosted(uint64_t id)
{
    auto it = channels_.find(id);
    if (it != channels_.end()) {
        ++it->second.posted;
    }
}

void
WaitGraph::channelConsumed(uint64_t id)
{
    auto it = channels_.find(id);
    if (it != channels_.end()) {
        ++it->second.consumed;
    }
}

void
WaitGraph::channelReader(uint64_t id, bool present)
{
    auto it = channels_.find(id);
    if (it != channels_.end()) {
        it->second.readerParked = present;
    }
}

size_t
WaitGraph::blockedCount() const
{
    size_t n = 0;
    for (const auto &[who, park] : parked_) {
        if (!park.daemon) {
            ++n;
        }
    }
    return n;
}

std::vector<HangReport>
WaitGraph::quiescenceReports(Time now) const
{
    std::vector<HangReport> out;
    for (const auto &[id, ch] : channels_) {
        if (ch.posted <= ch.consumed) {
            continue;
        }
        // Pending notifications with a parked blocking reader would be
        // a delivery bug, not a lost wakeup — but a drained queue with
        // both cannot happen (the wakeup event would still be pending),
        // so every surplus here is a notification nobody will consume.
        HangReport rep;
        rep.kind = HangReport::Kind::kLostWakeup;
        rep.at = now;
        std::ostringstream detail;
        detail << (ch.posted - ch.consumed) << " pending notification(s), "
               << (ch.open ? "no consumer arrived" : "channel destroyed");
        rep.detail = detail.str();
        rep.parties.push_back("channel " + ch.label);
        out.push_back(std::move(rep));
    }
    for (const auto &[who, park] : parked_) {
        if (park.daemon) {
            continue;
        }
        HangReport rep;
        rep.kind = HangReport::Kind::kBlockedTask;
        rep.at = now;
        rep.detail = "coroutine parked forever (no wakeup pending)";
        rep.parties.push_back(park.site);
        out.push_back(std::move(rep));
    }
    return out;
}

void
WaitGraph::reset()
{
    held_.clear();
    waiting_.clear();
    parked_.clear();
    channels_.clear();
    nextChannelId_ = 1;
    deadlocks_.clear();
    seenCycles_.clear();
}

} // namespace remora::sim
