#include "sim/logger.h"

#include <cstdio>

#include "util/strings.h"

namespace remora::sim {

LogLevel Logger::level_ = LogLevel::kWarn;
std::function<Time()> Logger::timeSource_;

void
Logger::setTimeSource(std::function<Time()> src)
{
    timeSource_ = std::move(src);
}

namespace {

const char *
levelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

} // namespace

void
Logger::write(LogLevel lvl, const char *tag, const std::string &msg)
{
    if (timeSource_) {
        std::fprintf(stderr, "[%12s] %-5s %-10s %s\n",
                     util::formatDuration(timeSource_()).c_str(),
                     levelName(lvl), tag, msg.c_str());
    } else {
        std::fprintf(stderr, "%-5s %-10s %s\n", levelName(lvl), tag,
                     msg.c_str());
    }
}

} // namespace remora::sim
