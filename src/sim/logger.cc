#include "sim/logger.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>

#include "util/panic.h"
#include "util/strings.h"

namespace remora::sim {

LogLevel Logger::level_ = LogLevel::kWarn;
LogLevel Logger::ringLevel_ = LogLevel::kInfo;
bool Logger::initialized_ = false;
std::function<Time()> Logger::timeSource_;

namespace {

/** Recent formatted messages; bounded by gRingCapacity. */
std::deque<std::string> &
ring()
{
    static std::deque<std::string> r;
    return r;
}

size_t gRingCapacity = 64;

const char *
levelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

} // namespace

bool
Logger::parseLevel(const char *name, LogLevel *out)
{
    if (name == nullptr || out == nullptr) {
        return false;
    }
    struct Entry
    {
        const char *name;
        LogLevel level;
    };
    static constexpr Entry kNames[] = {
        {"trace", LogLevel::kTrace}, {"debug", LogLevel::kDebug},
        {"info", LogLevel::kInfo},   {"warn", LogLevel::kWarn},
        {"warning", LogLevel::kWarn}, {"error", LogLevel::kError},
    };
    for (const Entry &e : kNames) {
        if (strcasecmp(name, e.name) == 0) {
            *out = e.level;
            return true;
        }
    }
    return false;
}

void
Logger::ensureInit()
{
    if (initialized_) {
        return;
    }
    initialized_ = true;
    if (const char *env = std::getenv("REMORA_LOG_LEVEL")) {
        LogLevel lvl;
        if (parseLevel(env, &lvl)) {
            level_ = lvl;
        } else {
            std::fprintf(stderr,
                         "remora: ignoring unknown REMORA_LOG_LEVEL '%s'\n",
                         env);
        }
    }
    util::setPanicHook(&Logger::dumpRecent);
}

void
Logger::setRingCapacity(size_t n)
{
    ensureInit();
    gRingCapacity = n;
    while (ring().size() > gRingCapacity) {
        ring().pop_front();
    }
}

void
Logger::setTimeSource(std::function<Time()> src)
{
    ensureInit();
    timeSource_ = std::move(src);
}

void
Logger::write(LogLevel lvl, const char *tag, const std::string &msg)
{
    ensureInit();
    char line[512];
    if (timeSource_) {
        std::snprintf(line, sizeof(line), "[%12s] %-5s %-10s %s",
                      util::formatDuration(timeSource_()).c_str(),
                      levelName(lvl), tag, msg.c_str());
    } else {
        std::snprintf(line, sizeof(line), "%-5s %-10s %s", levelName(lvl),
                      tag, msg.c_str());
    }
    if (lvl >= level_) {
        std::fprintf(stderr, "%s\n", line);
    }
    if (lvl >= ringLevel_ && gRingCapacity > 0) {
        if (ring().size() >= gRingCapacity) {
            ring().pop_front();
        }
        ring().emplace_back(line);
    }
}

std::vector<std::string>
Logger::recent()
{
    return {ring().begin(), ring().end()};
}

void
Logger::clearRecent()
{
    ring().clear();
}

void
Logger::dumpRecent()
{
    if (ring().empty()) {
        return;
    }
    std::fprintf(stderr, "--- last %zu cluster events ---\n", ring().size());
    for (const std::string &line : ring()) {
        std::fprintf(stderr, "%s\n", line.c_str());
    }
    std::fprintf(stderr, "--- end of recent events ---\n");
}

} // namespace remora::sim
