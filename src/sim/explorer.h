/**
 * @file
 * Stateless model checking over simulator schedules.
 *
 * The deterministic simulator makes every run a pure function of its
 * same-instant tie-break choices: re-execute the workload with a
 * different choice at some decision point and you get a different —
 * equally legal — interleaving. ScheduleExplorer turns that into a
 * verifier: it replays a workload thunk from scratch once per schedule,
 * drives the Simulator through a RecordReplay-style policy, and
 * enumerates the tree of choice vectors depth-first.
 *
 * Exhaustive enumeration is tamed with a sleep-set (DPOR-lite)
 * reduction keyed on the dependency hints events carry (sim::DepHint):
 * after exploring transition t from a node, t joins the node's sleep
 * set; descendants inherit the sleeping transitions that are
 * *independent* of the transition taken (different channel, different
 * sync word, non-overlapping segment ranges) and never re-explore
 * them, because swapping two commuting events cannot reach a new
 * state. Unknown hints are conservatively dependent, so the reduction
 * is sound: it prunes only provably-equivalent interleavings.
 *
 * Each schedule ends in one of: quiescence (checked for lost wakeups
 * and blocked-forever coroutines via the WaitGraph), a deadlock halt,
 * or step-budget exhaustion. Findings are deduped by signature and
 * shrunk to the minimal failing choice prefix — the shortest prefix
 * that still reproduces the finding with default choices beyond it.
 *
 * The workload thunk must be deterministic (same choices -> same run)
 * and must drive the simulator itself (build the cluster, call
 * sim.run()); the explorer never steps the simulator after the thunk
 * returns, so the thunk's stack objects cannot be used after free.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/waitgraph.h"

namespace remora::sim {

/** Exploration bounds and knobs. */
struct ExplorerOptions
{
    /** Stop after this many schedules even if the tree is unfinished. */
    uint64_t maxSchedules = 1000;
    /** Per-schedule step cap (cuts off livelocked interleavings). */
    uint64_t stepBudget = 500000;
    /** Sleep-set reduction; off = brute-force DFS over all choices. */
    bool reduction = true;
    /** Shrink each finding to its minimal failing choice prefix. */
    bool shrink = true;
    /** Extra replays allowed per finding while shrinking. */
    uint64_t maxShrinkRuns = 128;
    /** Stop recording findings past this many (dedup continues). */
    size_t maxFindings = 8;
};

/** One deduped finding with its reproducer. */
struct ExplorerFinding
{
    HangReport report;
    /** 0-based index of the schedule that first hit it. */
    uint64_t schedule = 0;
    /** Full choice vector of that schedule. */
    std::vector<uint32_t> choices;
    /** Minimal failing prefix (equals choices when shrinking is off). */
    std::vector<uint32_t> shrunk;
    /** Digest of the failing schedule, for replay verification. */
    uint64_t digest = 0;
};

/** Outcome of an explore() call. */
struct ExploreResult
{
    /** Schedules executed. */
    uint64_t schedules = 0;
    /** Decision points hit, summed over all schedules. */
    uint64_t decisions = 0;
    /** Alternatives pruned by the sleep-set reduction. */
    uint64_t sleepSkips = 0;
    /** Deepest decision stack reached. */
    uint64_t maxDepth = 0;
    /** True when the whole (reduced) tree was explored. */
    bool exhausted = false;
    /** True when maxSchedules stopped exploration early. */
    bool capped = false;
    /** Digest of schedule 0 (the default, all-first-choice run). */
    uint64_t firstDigest = 0;
    std::vector<ExplorerFinding> findings;
};

/** The stateless model checker. */
class ScheduleExplorer
{
  public:
    /**
     * A deterministic workload: builds its world on @p sim, drives it
     * (sim.run() / fixture helpers) and tears it down before returning.
     */
    using Workload = std::function<void(Simulator &sim)>;

    explicit ScheduleExplorer(Workload workload, ExplorerOptions opts = {});

    /** Enumerate schedules depth-first; see ExploreResult. */
    ExploreResult explore();

    /** One replayed schedule. */
    struct RunOutcome
    {
        /** Choices taken (prefix plus default tail). */
        std::vector<uint32_t> choices;
        /** Findings of this single schedule (not deduped). */
        std::vector<HangReport> reports;
        uint64_t digest = 0;
        uint64_t steps = 0;
        /** True when the event queue fully drained. */
        bool quiescent = false;
    };

    /**
     * Execute the workload once under @p prefix (insertion order beyond
     * it) — the replay path for reproducing and verifying findings.
     */
    RunOutcome runOnce(const std::vector<uint32_t> &prefix);

    // Cumulative counters, for registration under "mc." in a registry.
    const Counter &schedulesRun() const { return schedules_; }
    const Counter &decisionsHit() const { return decisions_; }
    const Counter &findingsFound() const { return findings_; }
    const Counter &sleepSkips() const { return sleepSkips_; }
    const Counter &shrinkRuns() const { return shrinkRuns_; }

  private:
    /** One decision point on the DFS stack. */
    struct Node
    {
        /** Ready set at this point, insertion order (run-invariant). */
        std::vector<EventId> altIds;
        /** Index currently being explored. */
        size_t chosen = 0;
        /** Explored + inherited-sleeping alternatives. */
        std::set<EventId> sleep;
        /** Alternatives actually executed from this node. */
        size_t explored = 0;
    };

    class Policy;

    /** Run the workload once under the DFS stack (extending it). */
    RunOutcome executeStack();

    /** Collect this run's findings from the simulator's end state. */
    static void collectReports(Simulator &sim, RunOutcome &out);

    /** Advance the stack to the next unexplored branch. */
    bool advance();

    /** Minimal prefix of @p full still reproducing signature @p sig. */
    std::vector<uint32_t> shrinkPrefix(const std::vector<uint32_t> &full,
                                       const std::string &sig);

    Workload workload_;
    ExplorerOptions opts_;
    std::vector<Node> stack_;
    Counter schedules_;
    Counter decisions_;
    Counter findings_;
    Counter sleepSkips_;
    Counter shrinkRuns_;
};

} // namespace remora::sim
