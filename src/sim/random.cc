#include "sim/random.h"

#include <algorithm>
#include <cmath>

#include "util/panic.h"

namespace remora::sim {

Random::Random(uint64_t seed)
    : state_(0), inc_((0xda3e39cb94b95bdbull << 1) | 1)
{
    nextU32();
    state_ += seed;
    nextU32();
}

uint32_t
Random::nextU32()
{
    uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
    uint32_t rot = static_cast<uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

uint64_t
Random::nextU64()
{
    return (static_cast<uint64_t>(nextU32()) << 32) | nextU32();
}

uint32_t
Random::uniformInt(uint32_t bound)
{
    REMORA_ASSERT(bound > 0);
    // Lemire-style rejection to remove modulo bias.
    uint32_t threshold = (0u - bound) % bound;
    for (;;) {
        uint32_t r = nextU32();
        if (r >= threshold) {
            return r % bound;
        }
    }
}

int64_t
Random::uniformRange(int64_t lo, int64_t hi)
{
    REMORA_ASSERT(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) { // full 64-bit range
        return static_cast<int64_t>(nextU64());
    }
    // 64-bit rejection sampling.
    uint64_t threshold = (0ull - span) % span;
    for (;;) {
        uint64_t r = nextU64();
        if (r >= threshold) {
            return lo + static_cast<int64_t>(r % span);
        }
    }
}

double
Random::uniformReal()
{
    // 53 random bits into [0,1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Random::exponential(double mean)
{
    REMORA_ASSERT(mean > 0.0);
    double u;
    do {
        u = uniformReal();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

bool
Random::bernoulli(double p)
{
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return uniformReal() < p;
}

Random::Zipf::Zipf(size_t n, double s)
{
    REMORA_ASSERT(n > 0);
    cdf_.resize(n);
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = acc;
    }
    for (double &v : cdf_) {
        v /= acc;
    }
}

size_t
Random::Zipf::sample(Random &rng) const
{
    double u = rng.uniformReal();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) {
        return cdf_.size() - 1;
    }
    return static_cast<size_t>(it - cdf_.begin());
}

Random::Discrete::Discrete(const std::vector<double> &weights)
{
    REMORA_ASSERT(!weights.empty());
    cdf_.resize(weights.size());
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        REMORA_ASSERT(weights[i] >= 0.0);
        acc += weights[i];
        cdf_[i] = acc;
    }
    REMORA_ASSERT(acc > 0.0);
    for (double &v : cdf_) {
        v /= acc;
    }
}

size_t
Random::Discrete::sample(Random &rng) const
{
    double u = rng.uniformReal();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) {
        return cdf_.size() - 1;
    }
    return static_cast<size_t>(it - cdf_.begin());
}

} // namespace remora::sim
