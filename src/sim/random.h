/**
 * @file
 * Deterministic pseudo-randomness for workload generation.
 *
 * PCG32 keeps runs reproducible across platforms (std:: distributions
 * are implementation-defined, so we implement the few we need).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace remora::sim {

/** PCG32 (Melissa O'Neill's pcg32_random_r), deterministic everywhere. */
class Random
{
  public:
    /** Seeded generator; the same seed yields the same stream. */
    explicit Random(uint64_t seed = 0x853c49e6748fea9bull);

    /** Next raw 32-bit value. */
    uint32_t nextU32();

    /** Next raw 64-bit value. */
    uint64_t nextU64();

    /** Uniform integer in [0, bound), bound > 0, unbiased. */
    uint32_t uniformInt(uint32_t bound);

    /** Uniform integer in [lo, hi], inclusive, lo <= hi. */
    int64_t uniformRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Exponential variate with the given mean (> 0). */
    double exponential(double mean);

    /** True with probability @p p (clamped to [0,1]). */
    bool bernoulli(double p);

    /**
     * Zipf-distributed rank in [0, n) with exponent @p s, drawn by
     * inverse-CDF over precomputed weights.
     */
    class Zipf
    {
      public:
        /**
         * @param n Number of ranks (> 0).
         * @param s Skew exponent (s = 0 is uniform; ~0.8-1.2 typical).
         */
        Zipf(size_t n, double s);

        /** Draw a rank using @p rng. */
        size_t sample(Random &rng) const;

      private:
        std::vector<double> cdf_;
    };

    /**
     * Draw an index from an arbitrary discrete weight vector
     * (weights need not be normalized; all >= 0, sum > 0).
     */
    class Discrete
    {
      public:
        /** Build the sampler from @p weights. */
        explicit Discrete(const std::vector<double> &weights);

        /** Draw an index using @p rng. */
        size_t sample(Random &rng) const;

      private:
        std::vector<double> cdf_;
    };

  private:
    uint64_t state_;
    uint64_t inc_;
};

} // namespace remora::sim
