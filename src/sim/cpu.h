/**
 * @file
 * A serializing CPU resource with per-category busy-time accounting.
 *
 * Every simulated node has exactly one CPU. All work a node performs —
 * trap handling, protection checks, programmed I/O to the network FIFOs,
 * data copies, context switches, server procedure bodies — is charged to
 * its CpuResource, which serializes requests in arrival order (a simple
 * FCFS processor model). The paper's "server load" metric (Figure 3) is
 * exactly this accounting, split by category.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/time.h"

namespace remora::sim {

/**
 * Accounting categories for CPU time, matching the paper's Figure 3
 * breakdown of server activity plus a general bucket.
 */
enum class CpuCategory : uint8_t
{
    /** Receiving data from the network (PIO drain, validation, copies). */
    kDataReceive = 0,
    /** Control transfer: notification dispatch, context switches. */
    kControlTransfer,
    /** Procedure invocation overhead (dispatch, stubs). */
    kProcInvoke,
    /** Sending data to the network (format, PIO fill). */
    kDataReply,
    /** Executing application/service procedure bodies. */
    kProcExec,
    /** Everything else (kernel bookkeeping, timers). */
    kOther,
    kNumCategories,
};

/** Human-readable name of a CPU accounting category. */
const char *cpuCategoryName(CpuCategory cat);

/** FCFS processor model with busy-time accounting. */
class CpuResource
{
  public:
    /**
     * @param sim Owning simulator.
     * @param name Diagnostic name (e.g. "server.cpu").
     */
    CpuResource(Simulator &sim, std::string name);

    /**
     * Consume @p cost of CPU time, then invoke @p fn.
     *
     * The work starts when all previously posted work has finished (or
     * immediately if the CPU is idle) and runs non-preemptively.
     *
     * @param cost CPU time consumed; must be >= 0.
     * @param cat Accounting bucket the time is charged to.
     * @param fn Invoked at completion time; may be empty.
     */
    void post(Duration cost, CpuCategory cat, Simulator::Callback fn = {});

    /**
     * Coroutine flavour of post(): `co_await cpu.use(cost, cat)` resumes
     * once the CPU time has been consumed.
     */
    Task<void> use(Duration cost, CpuCategory cat);

    /** Simulated instant at which currently queued work completes. */
    Time busyUntil() const { return busyUntil_; }

    /** Total CPU time consumed since construction / last reset. */
    Duration totalBusy() const { return totalBusy_; }

    /** CPU time consumed in @p cat since construction / last reset. */
    Duration busyIn(CpuCategory cat) const;

    /** Utilization over [since, now]: busy time / wall time. */
    double utilizationSince(Time since) const;

    /** Clear the accounting counters (busyUntil is unaffected). */
    void resetAccounting();

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

    /** Owning simulator. */
    Simulator &simulator() { return sim_; }

  private:
    Simulator &sim_;
    std::string name_;
    Time busyUntil_ = 0;
    Duration totalBusy_ = 0;
    Duration byCategory_[static_cast<size_t>(CpuCategory::kNumCategories)] = {};
};

} // namespace remora::sim
