#include "sim/simulator.h"

#include <utility>

#include "util/panic.h"

namespace remora::sim {

EventId
Simulator::schedule(Duration delay, Callback fn)
{
    REMORA_ASSERT(delay >= 0);
    return scheduleAt(now_ + delay, std::move(fn));
}

EventId
Simulator::scheduleAt(Time when, Callback fn)
{
    REMORA_ASSERT(when >= now_);
    EventId id = nextId_++;
    queue_.push(Entry{when, id});
    callbacks_.emplace(id, std::move(fn));
    digest_.mixRecord(when, "sched", id);
    return id;
}

void
Simulator::cancel(EventId id)
{
    // The heap entry stays behind as a tombstone; step() skips entries
    // whose callback has been erased.
    if (callbacks_.erase(id) != 0) {
        digest_.mixRecord(now_, "cancel", id);
    }
}

bool
Simulator::step()
{
    while (!queue_.empty()) {
        Entry top = queue_.top();
        queue_.pop();
        auto it = callbacks_.find(top.id);
        if (it == callbacks_.end()) {
            continue; // cancelled
        }
        Callback fn = std::move(it->second);
        callbacks_.erase(it);
        REMORA_ASSERT(top.when >= now_);
        now_ = top.when;
        ++processed_;
        digest_.mixRecord(now_, "exec", top.id);
        fn();
        return true;
    }
    return false;
}

uint64_t
Simulator::run(Time limit)
{
    uint64_t count = 0;
    while (!queue_.empty()) {
        // Peek past tombstones without executing.
        Entry top = queue_.top();
        if (callbacks_.find(top.id) == callbacks_.end()) {
            queue_.pop();
            continue;
        }
        if (top.when > limit) {
            break;
        }
        if (step()) {
            ++count;
        }
    }
    return count;
}

} // namespace remora::sim
