#include "sim/simulator.h"

#include <cstdlib>
#include <utility>

#include "util/panic.h"

namespace remora::sim {

namespace {

/** splitmix64: a well-mixed 64-bit permutation for tie-break keys. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** REMORA_PERTURB, parsed once per process (0 when unset/invalid). */
uint64_t
envPerturbSeed()
{
    static const uint64_t seed = [] {
        const char *e = std::getenv("REMORA_PERTURB");
        return e != nullptr ? std::strtoull(e, nullptr, 0) : 0ull;
    }();
    return seed;
}

} // namespace

Simulator::Simulator()
{
    uint64_t seed = envPerturbSeed();
    if (seed != 0) {
        setPerturbation(seed);
    }
}

void
Simulator::setPerturbation(uint64_t seed)
{
    // Re-keying entries already in the heap would break its ordering
    // invariant; seeds may only change while the queue is empty.
    REMORA_ASSERT(queue_.empty());
    if (seed == perturbSeed_) {
        return;
    }
    perturbSeed_ = seed;
    if (seed != 0) {
        // Perturbed runs are replayable per seed, but must never alias
        // an unperturbed run's digest.
        digest_.mixRecord(now_, "perturb", seed);
    }
}

uint64_t
Simulator::tieKey(EventId id) const
{
    if (perturbSeed_ == 0) {
        return id;
    }
    return mix64(perturbSeed_ ^ (id * 0x9e3779b97f4a7c15ull));
}

EventId
Simulator::schedule(Duration delay, Callback fn)
{
    REMORA_ASSERT(delay >= 0);
    return scheduleAt(now_ + delay, std::move(fn));
}

EventId
Simulator::scheduleAt(Time when, Callback fn)
{
    REMORA_ASSERT(when >= now_);
    EventId id = nextId_++;
    queue_.push(Entry{when, tieKey(id), id});
    callbacks_.emplace(id, std::move(fn));
    digest_.mixRecord(when, "sched", id);
    return id;
}

void
Simulator::cancel(EventId id)
{
    // The heap entry stays behind as a tombstone; step() skips entries
    // whose callback has been erased.
    if (callbacks_.erase(id) != 0) {
        digest_.mixRecord(now_, "cancel", id);
    }
}

bool
Simulator::step()
{
    while (!queue_.empty()) {
        Entry top = queue_.top();
        queue_.pop();
        auto it = callbacks_.find(top.id);
        if (it == callbacks_.end()) {
            continue; // cancelled
        }
        Callback fn = std::move(it->second);
        callbacks_.erase(it);
        REMORA_ASSERT(top.when >= now_);
        now_ = top.when;
        ++processed_;
        digest_.mixRecord(now_, "exec", top.id);
        fn();
        return true;
    }
    return false;
}

uint64_t
Simulator::run(Time limit)
{
    uint64_t count = 0;
    while (!queue_.empty()) {
        // Peek past tombstones without executing.
        Entry top = queue_.top();
        if (callbacks_.find(top.id) == callbacks_.end()) {
            queue_.pop();
            continue;
        }
        if (top.when > limit) {
            break;
        }
        if (step()) {
            ++count;
        }
    }
    return count;
}

} // namespace remora::sim
