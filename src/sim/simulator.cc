#include "sim/simulator.h"

#include <cstdlib>
#include <utility>

#include "util/panic.h"

namespace remora::sim {

namespace {

/** splitmix64: a well-mixed 64-bit permutation for tie-break keys. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** REMORA_PERTURB, parsed once per process (0 when unset/invalid). */
uint64_t
envPerturbSeed()
{
    static const uint64_t seed = [] {
        const char *e = std::getenv("REMORA_PERTURB");
        return e != nullptr ? std::strtoull(e, nullptr, 0) : 0ull;
    }();
    return seed;
}

} // namespace

size_t
PerturbPolicy::choose(Simulator &, const std::vector<ReadyChoice> &ready)
{
    // Same key function the perturbed heap historically ordered by, so
    // a seeded run's total order (and digest) is unchanged: among the
    // ready set, the minimal (mixed key, id) runs first.
    size_t best = 0;
    uint64_t bestKey = mix64(seed_ ^ (ready[0].id * 0x9e3779b97f4a7c15ull));
    for (size_t i = 1; i < ready.size(); ++i) {
        uint64_t key = mix64(seed_ ^ (ready[i].id * 0x9e3779b97f4a7c15ull));
        if (key < bestKey ||
            (key == bestKey && ready[i].id < ready[best].id)) {
            best = i;
            bestKey = key;
        }
    }
    return best;
}

size_t
RecordReplayPolicy::choose(Simulator &, const std::vector<ReadyChoice> &ready)
{
    size_t idx;
    if (depth_ < prefix_.size()) {
        idx = prefix_[depth_];
        if (idx >= ready.size()) {
            // A prefix recorded against this workload always stays in
            // range; going out of range means the workload is not
            // deterministic between runs.
            REMORA_FATAL("RecordReplayPolicy: choice prefix diverged from "
                         "the workload (nondeterministic workload?)");
        }
    } else if (fallback_) {
        idx = fallback_(ready, depth_);
        REMORA_ASSERT(idx < ready.size());
    } else {
        idx = 0;
    }
    recorded_.push_back(static_cast<uint32_t>(idx));
    ++depth_;
    return idx;
}

Simulator::Simulator()
{
    uint64_t seed = envPerturbSeed();
    if (seed != 0) {
        setPerturbation(seed);
    }
}

void
Simulator::setPerturbation(uint64_t seed)
{
    // A run's whole schedule is governed by one seed; switching with
    // events pending would make the digest meaningless.
    REMORA_ASSERT(queue_.empty());
    if (seed == perturbSeed_) {
        return;
    }
    perturbSeed_ = seed;
    if (seed != 0) {
        // Perturbed runs are replayable per seed, but must never alias
        // an unperturbed run's digest.
        digest_.mixRecord(now_, "perturb", seed);
        ownedPerturb_ = std::make_unique<PerturbPolicy>(seed);
        policy_ = ownedPerturb_.get();
    } else {
        if (policy_ == ownedPerturb_.get()) {
            policy_ = nullptr;
        }
        ownedPerturb_.reset();
    }
}

void
Simulator::setPolicy(SchedulePolicy *policy)
{
    policy_ = policy;
    if (policy != nullptr) {
        ownedPerturb_.reset();
    }
}

void
Simulator::setStepBudget(uint64_t steps)
{
    stepBudgetEnd_ = steps == 0 ? 0 : processed_ + steps;
    budgetHit_ = false;
}

bool
Simulator::deadlockHalted() const
{
    return haltOnDeadlock_ && !graph_.deadlocks().empty();
}

EventId
Simulator::schedule(Duration delay, Callback fn)
{
    REMORA_ASSERT(delay >= 0);
    return scheduleAt(now_ + delay, std::move(fn));
}

EventId
Simulator::scheduleAt(Time when, Callback fn)
{
    REMORA_ASSERT(when >= now_);
    EventId id = nextId_++;
    queue_.push(Entry{when, id});
    callbacks_.emplace(id, PendingEvent{std::move(fn), currentHint_});
    digest_.mixRecord(when, "sched", id);
    return id;
}

void
Simulator::cancel(EventId id)
{
    // The heap entry stays behind as a tombstone; step() skips entries
    // whose callback has been erased.
    if (callbacks_.erase(id) != 0) {
        digest_.mixRecord(now_, "cancel", id);
    }
}

bool
Simulator::step()
{
    // Drop leading tombstones so emptiness checks see live state.
    while (!queue_.empty() &&
           callbacks_.find(queue_.top().id) == callbacks_.end()) {
        queue_.pop();
    }
    if (queue_.empty()) {
        return false;
    }
    if (deadlockHalted()) {
        return false;
    }
    if (stepBudgetEnd_ != 0 && processed_ >= stepBudgetEnd_) {
        budgetHit_ = true;
        return false;
    }

    // Gather the full ready set at the minimal timestamp. The heap
    // orders by (when, id), so the batch comes out in insertion order.
    Time when = queue_.top().when;
    batch_.clear();
    while (!queue_.empty() && queue_.top().when == when) {
        Entry e = queue_.top();
        queue_.pop();
        if (callbacks_.find(e.id) != callbacks_.end()) {
            batch_.push_back(e);
        }
    }
    size_t chosen = 0;
    if (batch_.size() > 1) {
        ++decisions_;
        if (policy_ != nullptr) {
            ready_.clear();
            for (const Entry &e : batch_) {
                ready_.push_back(ReadyChoice{e.id, callbacks_[e.id].hint});
            }
            chosen = policy_->choose(*this, ready_);
            REMORA_ASSERT(chosen < batch_.size());
            // Every consulted choice lands in the digest, so a replayed
            // choice vector reproduces the run bit-identically.
            digest_.mixRecord(when, "choice", chosen);
        }
    }
    for (size_t i = 0; i < batch_.size(); ++i) {
        if (i != chosen) {
            queue_.push(batch_[i]);
        }
    }

    Entry top = batch_[chosen];
    auto it = callbacks_.find(top.id);
    PendingEvent ev = std::move(it->second);
    callbacks_.erase(it);
    REMORA_ASSERT(top.when >= now_);
    now_ = top.when;
    ++processed_;
    digest_.mixRecord(now_, "exec", top.id);
    // The executing event's hint becomes ambient so events it schedules
    // inherit their causal chain's hint (until a HintScope overrides).
    DepHint prev = std::exchange(currentHint_, ev.hint);
    ev.fn();
    currentHint_ = prev;
    return true;
}

uint64_t
Simulator::run(Time limit)
{
    uint64_t count = 0;
    while (!queue_.empty()) {
        // Peek past tombstones without executing.
        Entry top = queue_.top();
        if (callbacks_.find(top.id) == callbacks_.end()) {
            queue_.pop();
            continue;
        }
        if (top.when > limit) {
            break;
        }
        if (!step()) {
            break;
        }
        ++count;
    }
    return count;
}

} // namespace remora::sim
