#include "names/clerk.h"

#include <algorithm>

#include "rmem/race_detector.h"
#include "sim/logger.h"
#include "util/bytes.h"
#include "util/panic.h"

namespace remora::names {

namespace {

/** Scratch-segment layout: read-probe slots, then control-transfer area. */
constexpr uint32_t kScratchBytes = 4096;
constexpr uint32_t kProbeSlots = 32;
constexpr uint32_t kCtArea = 2048;
constexpr uint32_t kCtSlots = 16;
constexpr uint32_t kCtSlotBytes = 128;

/** Request-segment size (one in-flight lookup request record). */
constexpr uint32_t kRequestBytes = 128;

/**
 * Control-transfer reply layout: seq(4), found(4), then a compact
 * record — node(2), descriptor(1), rights(1), generation(2), pad(2),
 * size(4) — 20 bytes total. The name is omitted: the requester asked
 * for it, so echoing it back would only push the reply past one cell.
 */
constexpr uint32_t kCtReplyHeader = 8;
constexpr uint32_t kCtReplyBytes = 20;

} // namespace

NameClerk::NameClerk(rmem::RmemEngine &engine, const NameClerkParams &params)
    : engine_(engine), params_(params),
      process_(engine.node().spawnProcess("name-clerk")),
      lrpc_(engine.node().cpu(), params.localRpc)
{
    uint32_t registryBytes = params_.buckets * NameRecord::kBytes;
    registryBase_ = process_.space().allocRegion(registryBytes);
    scratchBase_ = process_.space().allocRegion(kScratchBytes);
    requestBase_ = process_.space().allocRegion(kRequestBytes);

    auto reg = engine_.exportSegment(
        process_, registryBase_, registryBytes,
        rmem::Rights::kRead | rmem::Rights::kWrite | rmem::Rights::kCas,
        rmem::NotifyPolicy::kNever, "names.registry");
    auto scratch = engine_.exportSegment(
        process_, scratchBase_, kScratchBytes, rmem::Rights::kWrite,
        rmem::NotifyPolicy::kNever, "names.scratch");
    auto request = engine_.exportSegment(
        process_, requestBase_, kRequestBytes, rmem::Rights::kWrite,
        rmem::NotifyPolicy::kConditional, "names.request");
    if (!reg.ok() || !scratch.ok() || !request.ok()) {
        REMORA_FATAL("name clerk failed to export well-known segments");
    }
    registryHandle_ = reg.value();
    scratchHandle_ = scratch.value();
    requestHandle_ = request.value();

    // The bootstrap convention: these slots are reserved cluster-wide.
    REMORA_ASSERT(registryHandle_.descriptor == kRegistryDescriptor);
    REMORA_ASSERT(scratchHandle_.descriptor == kScratchDescriptor);
    REMORA_ASSERT(requestHandle_.descriptor == kRequestDescriptor);

    engine_.channel(requestHandle_.descriptor)
        ->setSignalHandler(
            [this](const rmem::Notification &n) { onLookupRequest(n); });

    if (rmem::RaceDetector::on()) {
        // Declare the protocol's ordering words to the race detector.
        // Each registry bucket's flag word is the record's publication
        // point (body first, flag last — see localInsert), and each
        // control-transfer reply slot leads with the sequence word the
        // requester spins on. Everything else in these segments is
        // plain data whose ordering must derive from those words.
        auto &det = rmem::RaceDetector::instance();
        net::NodeId self = engine_.node().id();
        for (uint32_t b = 0; b < params_.buckets; ++b) {
            det.markSyncWord(self, registryHandle_.descriptor,
                             b * NameRecord::kBytes);
        }
        for (uint32_t i = 0; i < kCtSlots; ++i) {
            det.markSyncWord(self, scratchHandle_.descriptor,
                             kCtArea + i * kCtSlotBytes);
        }
    }
}

void
NameClerk::addPeer(net::NodeId node)
{
    REMORA_ASSERT(node != engine_.node().id());
    Peer peer;
    peer.registry = rmem::ImportedSegment{
        node, kRegistryDescriptor, 1,
        params_.buckets * NameRecord::kBytes,
        rmem::Rights::kRead | rmem::Rights::kWrite | rmem::Rights::kCas};
    peer.request = rmem::ImportedSegment{node, kRequestDescriptor, 1,
                                         kRequestBytes, rmem::Rights::kWrite};
    peers_[node] = peer;
}

// ----------------------------------------------------------------------
// User operations
// ----------------------------------------------------------------------

sim::Task<util::Result<rmem::ImportedSegment>>
NameClerk::exportByName(mem::Process *owner, mem::Vaddr base, uint32_t size,
                        rmem::Rights rights, rmem::NotifyPolicy policy,
                        std::string name)
{
    stats_.exportsServed.inc();
    if (name.size() > kMaxNameLen) {
        co_return util::Status(util::ErrorCode::kInvalidArgument,
                               "segment name too long");
    }
    auto &cpu = engine_.node().cpu();

    // User -> kernel.
    co_await cpu.use(params_.costs.kernelCall, sim::CpuCategory::kOther);

    // Kernel: descriptor slot, generation, page pinning.
    auto handle = engine_.exportSegment(*owner, base, size, rights, policy,
                                        name);
    if (!handle.ok()) {
        co_return handle.status();
    }
    co_await cpu.use(params_.costs.exportKernelWork,
                     sim::CpuCategory::kOther);

    // Kernel -> clerk: ADDNAME local RPC.
    co_await lrpc_.enterCallee();
    co_await cpu.use(params_.costs.clerkInsert, sim::CpuCategory::kProcExec);
    NameRecord rec;
    rec.flag = RecordFlag::kValid;
    rec.node = engine_.node().id();
    rec.descriptor = handle.value().descriptor;
    rec.rights = rights;
    rec.generation = handle.value().generation;
    rec.size = size;
    rec.name = name;
    util::Status ins = localInsert(rec);
    co_await lrpc_.returnToCaller();

    if (!ins.ok()) {
        engine_.revokeSegment(handle.value().descriptor);
        co_return ins;
    }
    localExports_[name] = handle.value().descriptor;
    co_return handle.value();
}

sim::Task<util::Result<rmem::ImportedSegment>>
NameClerk::import(std::string name, std::optional<net::NodeId> hint,
                  bool forceRemote, std::optional<ProbePolicy> policyOverride)
{
    ProbePolicy policy = policyOverride.value_or(params_.policy);
    stats_.importsServed.inc();
    engine_.node().simulator().noteDigest("names.import", name);
    auto &cpu = engine_.node().cpu();

    co_await cpu.use(params_.costs.kernelCall, sim::CpuCategory::kOther);

    // Kernel -> clerk: LOOKUPNAME local RPC. A forced remote lookup
    // bypasses the local registry/cache inspection entirely.
    co_await lrpc_.enterCallee();
    if (!forceRemote) {
        co_await cpu.use(params_.costs.clerkLookup,
                         sim::CpuCategory::kProcExec);
    }

    // 1. Names exported from this very node.
    if (!forceRemote) {
        if (auto rec = localFind(name)) {
            stats_.localHits.inc();
            co_await lrpc_.returnToCaller();
            co_return rec->toHandle();
        }
        // 2. The import cache.
        if (auto it = importCache_.find(name); it != importCache_.end()) {
            stats_.cacheHits.inc();
            // Convert before suspending: a resolve() racing on another
            // coroutine inserts into importCache_ (rehash), which
            // invalidates this iterator.
            rmem::ImportedSegment handle = it->second.record.toHandle();
            co_await lrpc_.returnToCaller();
            co_return handle;
        }
    }

    // 3. Remote resolution, at the hint or across all peers in order.
    std::vector<net::NodeId> targets;
    if (hint && *hint != engine_.node().id()) {
        targets.push_back(*hint);
    } else if (!hint) {
        for (const auto &[id, peer] : peers_) {
            (void)peer;
            targets.push_back(id);
        }
        std::sort(targets.begin(), targets.end());
    }

    for (net::NodeId target : targets) {
        auto resolved = co_await resolveAt(target, name, policy);
        if (resolved.ok()) {
            importCache_[name] = CachedImport{resolved.value(), target};
            co_await lrpc_.returnToCaller();
            co_return resolved.value().toHandle();
        }
        if (resolved.status().code() == util::ErrorCode::kTimeout) {
            // §3.7: silence within the deadline means the peer is gone.
            co_await lrpc_.returnToCaller();
            co_return resolved.status();
        }
    }
    co_await lrpc_.returnToCaller();
    co_return util::Status(util::ErrorCode::kNotFound,
                           "name not registered: " + name);
}

sim::Task<util::Status>
NameClerk::revoke(std::string name)
{
    stats_.deletesServed.inc();
    auto &cpu = engine_.node().cpu();

    co_await cpu.use(params_.costs.kernelCall, sim::CpuCategory::kOther);

    // Kernel -> clerk: DELETENAME local RPC ("a delete operation merely
    // marks the entry invalid in the local cache", §4.1).
    co_await lrpc_.enterCallee();
    co_await cpu.use(params_.costs.clerkInsert, sim::CpuCategory::kProcExec);
    bool deleted = localDelete(name);
    co_await lrpc_.returnToCaller();
    if (!deleted) {
        co_return util::Status(util::ErrorCode::kNotFound,
                               "name not exported here: " + name);
    }

    // Kernel: revoke the segment so stale remote handles NAK.
    co_await cpu.use(params_.costs.revokeKernelWork,
                     sim::CpuCategory::kOther);
    auto it = localExports_.find(name);
    if (it != localExports_.end()) {
        engine_.revokeSegment(it->second);
        localExports_.erase(it);
    }
    co_return util::Status();
}

sim::Task<void>
NameClerk::refresh()
{
    // Copy the key set: awaiting while iterating the live map is unsafe.
    std::vector<std::string> cached;
    cached.reserve(importCache_.size());
    for (const auto &[name, entry] : importCache_) {
        (void)entry;
        cached.push_back(name);
    }
    for (const std::string &name : cached) {
        auto it = importCache_.find(name);
        if (it == importCache_.end()) {
            continue;
        }
        net::NodeId home = it->second.home;
        rmem::Generation cachedGen = it->second.record.generation;
        auto fresh = co_await probeRemote(home, name, params_.buckets);
        it = importCache_.find(name); // may have changed across the await
        if (it == importCache_.end()) {
            continue;
        }
        if (!fresh.ok() || fresh.value().generation != cachedGen) {
            importCache_.erase(it);
            stats_.refreshPurges.inc();
        } else {
            it->second.record = fresh.value();
        }
    }
}

void
NameClerk::startPeriodicRefresh(sim::Duration interval)
{
    engine_.node().simulator().schedule(interval, [this, interval] {
        [](NameClerk *self, sim::Duration ivl) -> sim::Task<void> {
            co_await self->refresh();
            self->startPeriodicRefresh(ivl);
        }(this, interval)
                                .detach();
    });
}

// ----------------------------------------------------------------------
// Local registry memory operations
// ----------------------------------------------------------------------

uint32_t
NameClerk::bucketOffset(const std::string &name, uint32_t probe) const
{
    uint64_t h = registryHash(name);
    return static_cast<uint32_t>((h + probe) % params_.buckets) *
           NameRecord::kBytes;
}

std::optional<NameRecord>
NameClerk::localFind(const std::string &name)
{
    for (uint32_t probe = 0; probe < params_.buckets; ++probe) {
        uint32_t off = bucketOffset(name, probe);
        std::vector<uint8_t> buf(NameRecord::kBytes);
        util::Status rs = process_.space().read(registryBase_ + off, buf);
        REMORA_ASSERT(rs.ok());
        NameRecord rec = NameRecord::decode(buf);
        if (rec.flag == RecordFlag::kEmpty) {
            return std::nullopt;
        }
        if (rec.flag == RecordFlag::kValid && rec.name == name) {
            return rec;
        }
    }
    return std::nullopt;
}

util::Status
NameClerk::localInsert(const NameRecord &rec)
{
    for (uint32_t probe = 0; probe < params_.buckets; ++probe) {
        uint32_t off = bucketOffset(rec.name, probe);
        auto flag = process_.space().readWord(registryBase_ + off);
        REMORA_ASSERT(flag.ok());
        auto state = static_cast<RecordFlag>(flag.value());
        if (state == RecordFlag::kValid) {
            // Slot taken; also reject duplicate names.
            std::vector<uint8_t> buf(NameRecord::kBytes);
            util::Status rs =
                process_.space().read(registryBase_ + off, buf);
            REMORA_ASSERT(rs.ok());
            if (NameRecord::decode(buf).name == rec.name) {
                return util::Status(util::ErrorCode::kAlreadyExists,
                                    "name already registered: " + rec.name);
            }
            continue;
        }
        // Empty or deleted slot: write the body first, flag word last.
        // The flag word is the record's *release* point: a remote
        // probe that observes kValid acquires everything written
        // before (and including) the flag store, so readers never see
        // a half-written record. Reversing these two stores publishes
        // an unordered body — exactly the bug the race detector's
        // reordered-publish regression test pins down.
        std::vector<uint8_t> buf(NameRecord::kBytes);
        rec.encode(buf);
        util::Status ws = process_.space().write(
            registryBase_ + off + 4,
            std::span<const uint8_t>(buf).subspan(4));
        REMORA_ASSERT(ws.ok());
        ws = process_.space().writeWord(registryBase_ + off,
                                        static_cast<uint32_t>(rec.flag));
        REMORA_ASSERT(ws.ok());
        return util::Status();
    }
    return util::Status(util::ErrorCode::kResource, "registry full");
}

bool
NameClerk::localDelete(const std::string &name)
{
    for (uint32_t probe = 0; probe < params_.buckets; ++probe) {
        uint32_t off = bucketOffset(name, probe);
        std::vector<uint8_t> buf(NameRecord::kBytes);
        util::Status rs = process_.space().read(registryBase_ + off, buf);
        REMORA_ASSERT(rs.ok());
        NameRecord rec = NameRecord::decode(buf);
        if (rec.flag == RecordFlag::kEmpty) {
            return false;
        }
        if (rec.flag == RecordFlag::kValid && rec.name == name) {
            // Flag word first: readers instantly see the tombstone.
            // Tombstoning needs no body ordering (the body is left
            // intact), so writing the release word alone is correct;
            // the next localInsert into this slot re-publishes under
            // the same flag-word-last discipline.
            util::Status ws = process_.space().writeWord(
                registryBase_ + off,
                static_cast<uint32_t>(RecordFlag::kDeleted));
            REMORA_ASSERT(ws.ok());
            return true;
        }
    }
    return false;
}

// ----------------------------------------------------------------------
// Remote resolution
// ----------------------------------------------------------------------

sim::Task<util::Result<NameRecord>>
NameClerk::resolveAt(net::NodeId node, std::string name,
                     ProbePolicy policy)
{
    switch (policy) {
      case ProbePolicy::kProbeOnly: {
        auto r = co_await probeRemote(node, name, params_.buckets);
        co_return r;
      }
      case ProbePolicy::kProbeThenControl: {
        auto r = co_await probeRemote(node, name, params_.probeLimit);
        if (r.ok() ||
            r.status().code() != util::ErrorCode::kResource) {
            co_return r; // found, definitively absent, or failed
        }
        auto ct = co_await controlTransferLookup(node, name);
        co_return ct;
      }
      case ProbePolicy::kControlOnly: {
        auto ct = co_await controlTransferLookup(node, name);
        co_return ct;
      }
    }
    co_return util::Status(util::ErrorCode::kInternal, "bad probe policy");
}

sim::Task<util::Result<NameRecord>>
NameClerk::probeRemote(net::NodeId node, std::string name,
                       uint32_t maxProbes)
{
    auto it = peers_.find(node);
    if (it == peers_.end()) {
        co_return util::Status(util::ErrorCode::kInvalidArgument,
                               "unknown peer node");
    }
    // A copy, not a reference: the readv suspensions below let other
    // coroutines add peers, and an unordered_map rehash would leave a
    // reference dangling.
    const Peer peer = it->second;
    auto &cpu = engine_.node().cpu();

    uint64_t wanted = NameRecord::nameHashOf(name);
    // Windows grow geometrically (1, 4, 16, then kProbeSlots): linear
    // probing almost always resolves on the first bucket, so the first
    // exchange stays a single-cell read; a collision chain costs
    // O(log n) round trips instead of one per probe.
    uint32_t grow = 1;
    for (uint32_t base = 0; base < maxProbes; base += grow, grow =
                                                  std::min(grow * 4,
                                                           kProbeSlots)) {
        uint32_t window = std::min(grow, maxProbes - base);
        // One vectored READ fetches the whole probe window's record
        // prefixes in a single request/response frame: one trap and one
        // round trip where the scalar loop paid one per probe. Each
        // prefix lands in its own scratch slot; the scan below is local.
        std::vector<rmem::BatchBuilder::Read> ops;
        ops.reserve(window);
        for (uint32_t i = 0; i < window; ++i) {
            rmem::BatchBuilder::Read op;
            op.src = peer.registry;
            op.srcOff = bucketOffset(name, base + i);
            op.dstSeg = kScratchDescriptor;
            op.dstOff = i * NameRecord::kBytes;
            op.count = NameRecord::kPrefixBytes;
            ops.push_back(op);
        }
        stats_.remoteReads.inc(); // one wire op per window
        stats_.remoteProbes.inc(window);
        auto outcome =
            co_await engine_.readv(std::move(ops), params_.readTimeout);
        if (!outcome.status.ok()) {
            co_return outcome.status;
        }
        REMORA_ASSERT(outcome.results.size() == window);
        for (uint32_t i = 0; i < window; ++i) {
            const rmem::VectorSubResult &res = outcome.results[i];
            if (res.status != util::ErrorCode::kOk) {
                co_return util::Status(res.status,
                                       "probe read rejected at peer");
            }
            co_await cpu.use(params_.costs.probeCompare,
                             sim::CpuCategory::kProcExec);
            uint64_t hash = 0;
            NameRecord rec = NameRecord::decodePrefix(res.data, &hash);
            if (rec.flag == RecordFlag::kEmpty) {
                co_return util::Status(util::ErrorCode::kNotFound,
                                       "name absent at peer: " + name);
            }
            if (rec.flag == RecordFlag::kValid && hash == wanted) {
                // Hit: full record parse/validation before installing it.
                co_await cpu.use(params_.costs.recordParse,
                                 sim::CpuCategory::kProcExec);
                rec.name = name;
                co_return rec;
            }
            // Collision or tombstone: keep scanning the window.
        }
    }
    co_return util::Status(util::ErrorCode::kResource,
                           "probe budget exhausted for: " + name);
}

sim::Task<util::Result<NameRecord>>
NameClerk::controlTransferLookup(net::NodeId node, std::string name)
{
    auto it = peers_.find(node);
    if (it == peers_.end()) {
        co_return util::Status(util::ErrorCode::kInvalidArgument,
                               "unknown peer node");
    }
    const Peer &peer = it->second;
    stats_.controlTransfers.inc();

    uint32_t seq = ++ctSeq_;
    uint32_t replyOff =
        kCtArea + (seq % kCtSlots) * kCtSlotBytes;

    // Clear the reply slot so the spin-wait can't see a stale sequence.
    std::vector<uint8_t> zeros(kCtSlotBytes, 0);
    util::Status ws =
        process_.space().write(scratchBase_ + replyOff, zeros);
    REMORA_ASSERT(ws.ok());

    // Request record: seq, reply coordinates, the queried name.
    util::ByteWriter w(64);
    w.putU32(seq);
    w.putU8(scratchHandle_.descriptor);
    w.putU8(0);
    w.putU16(scratchHandle_.generation);
    w.putU32(replyOff);
    w.putU32(scratchHandle_.size);
    std::vector<uint8_t> nameBytes(48, 0);
    std::copy(name.begin(), name.end(), nameBytes.begin());
    w.putBytes(nameBytes);

    util::Status sent =
        co_await engine_.write(peer.request, 0, w.take(), true);
    if (!sent.ok()) {
        co_return sent;
    }

    // Spin-wait on the reply sequence word (§4.3).
    auto &sim = engine_.node().simulator();
    sim::Time deadline = params_.readTimeout > 0
                             ? sim.now() + params_.readTimeout
                             : sim::kTimeMax;
    for (;;) {
        auto word = process_.space().readWord(scratchBase_ + replyOff);
        REMORA_ASSERT(word.ok());
        if (word.value() == seq) {
            break;
        }
        if (sim.now() >= deadline) {
            co_return util::Status(util::ErrorCode::kTimeout,
                                   "control-transfer lookup timed out");
        }
        co_await sim::delay(sim, params_.pollInterval);
    }

    std::vector<uint8_t> reply(kCtReplyBytes);
    util::Status rs =
        process_.space().read(scratchBase_ + replyOff, reply);
    REMORA_ASSERT(rs.ok());
    util::ByteReader r(reply);
    r.skip(4); // seq
    bool found = r.getU32() != 0;
    if (!found) {
        co_return util::Status(util::ErrorCode::kNotFound,
                               "name absent at peer: " + name);
    }
    NameRecord rec;
    rec.flag = RecordFlag::kValid;
    rec.node = r.getU16();
    rec.descriptor = r.getU8();
    rec.rights = static_cast<rmem::Rights>(r.getU8());
    rec.generation = r.getU16();
    r.skip(2);
    rec.size = r.getU32();
    rec.name = name;
    co_return rec;
}

void
NameClerk::onLookupRequest(const rmem::Notification &n)
{
    // Runs as the clerk's signal handler after the dispatch cost; the
    // actual service work happens in a spawned task so it can await.
    [](NameClerk *self, net::NodeId src) -> sim::Task<void> {
        auto &cpu = self->engine_.node().cpu();

        std::vector<uint8_t> req(64);
        util::Status rs =
            self->process_.space().read(self->requestBase_, req);
        REMORA_ASSERT(rs.ok());
        util::ByteReader r(req);
        uint32_t seq = r.getU32();
        uint8_t replyDesc = r.getU8();
        r.skip(1);
        uint16_t replyGen = r.getU16();
        uint32_t replyOff = r.getU32();
        uint32_t replySize = r.getU32();
        auto nameBytes = r.viewBytes(48);
        size_t len = 0;
        while (len < nameBytes.size() && nameBytes[len] != 0) {
            ++len;
        }
        std::string name(reinterpret_cast<const char *>(nameBytes.data()),
                         len);

        co_await cpu.use(self->params_.costs.clerkLookup,
                         sim::CpuCategory::kProcExec);
        std::optional<NameRecord> rec = self->localFind(name);

        util::ByteWriter w(kCtReplyBytes);
        w.putU32(seq);
        w.putU32(rec ? 1 : 0);
        if (rec) {
            w.putU16(rec->node);
            w.putU8(rec->descriptor);
            w.putU8(static_cast<uint8_t>(rec->rights));
            w.putU16(rec->generation);
            w.putU16(0);
            w.putU32(rec->size);
        } else {
            w.putZeros(kCtReplyBytes - kCtReplyHeader);
        }

        rmem::ImportedSegment reply;
        reply.node = src;
        reply.descriptor = replyDesc;
        reply.generation = replyGen;
        reply.size = replySize;
        reply.rights = rmem::Rights::kWrite;
        util::Status ws =
            co_await self->engine_.write(reply, replyOff, w.take(), false);
        REMORA_ASSERT(ws.ok());
    }(this, n.srcNode)
                        .detach();
}

} // namespace remora::names
