#include "names/name_record.h"

#include <algorithm>
#include <cstring>

#include "util/bytes.h"
#include "util/hash.h"
#include "util/panic.h"

namespace remora::names {

void
NameRecord::encode(std::span<uint8_t> out) const
{
    REMORA_ASSERT(out.size() >= kBytes);
    REMORA_ASSERT(name.size() <= kMaxNameLen);
    util::ByteWriter w(kBytes);
    // Probe prefix (24 bytes).
    w.putU32(static_cast<uint32_t>(flag));
    w.putU16(node);
    w.putU8(descriptor);
    w.putU8(static_cast<uint8_t>(rights));
    w.putU16(generation);
    w.putU16(0); // pad
    w.putU32(size);
    w.putU64(nameHashOf(name));
    // Full name (40 bytes, NUL padded).
    w.putBytes(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t *>(name.data()), name.size()));
    w.putZeros(kBytes - kPrefixBytes - name.size());
    auto bytes = w.bytes();
    REMORA_ASSERT(bytes.size() == kBytes);
    std::memcpy(out.data(), bytes.data(), kBytes);
}

NameRecord
NameRecord::decode(std::span<const uint8_t> in)
{
    REMORA_ASSERT(in.size() >= kBytes);
    uint64_t hash = 0;
    NameRecord rec = decodePrefix(in, &hash);
    auto nameBytes = in.subspan(kPrefixBytes, kBytes - kPrefixBytes);
    size_t len = 0;
    while (len < nameBytes.size() && nameBytes[len] != 0) {
        ++len;
    }
    rec.name.assign(reinterpret_cast<const char *>(nameBytes.data()), len);
    return rec;
}

NameRecord
NameRecord::decodePrefix(std::span<const uint8_t> in, uint64_t *nameHash)
{
    REMORA_ASSERT(in.size() >= kPrefixBytes);
    util::ByteReader r(in);
    NameRecord rec;
    rec.flag = static_cast<RecordFlag>(r.getU32());
    rec.node = r.getU16();
    rec.descriptor = r.getU8();
    rec.rights = static_cast<rmem::Rights>(r.getU8());
    rec.generation = r.getU16();
    r.skip(2);
    rec.size = r.getU32();
    uint64_t hash = r.getU64();
    if (nameHash != nullptr) {
        *nameHash = hash;
    }
    return rec;
}

uint64_t
NameRecord::nameHashOf(const std::string &name)
{
    return util::fnv1a(name);
}

uint64_t
registryHash(const std::string &name)
{
    // Distinct seed from nameHashOf so bucket index and match tag are
    // independent.
    return util::mix64(util::fnv1a(name));
}

} // namespace remora::names
