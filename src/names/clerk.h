/**
 * @file
 * The segment name service: fully-distributed clerks (§4).
 *
 * The name server is "logically structured as a centralized service,
 * but physically organized as a distributed collection of clerks, one
 * per machine" with *no* central server. Each clerk:
 *
 *  - exports a well-known registry segment (an open-addressed hash
 *    table of NameRecords) at boot, granting access to the other
 *    clerks;
 *  - serves local kernel requests — ADDNAME / LOOKUPNAME / DELETENAME —
 *    arriving by local RPC;
 *  - satisfies lookups of remote names with *remote reads* of the
 *    exporting clerk's registry, probing the identical hash sequence
 *    (usually one read suffices);
 *  - caches imported name information and refreshes the cache
 *    periodically, purging stale entries;
 *  - optionally resolves lookups by control transfer (a remote write
 *    with notification served by the remote clerk's signal handler) —
 *    the fallback §4.2 weighs against probing and finds worthwhile
 *    only past ~seven collisions.
 *
 * The clerk must be the first exporter on its node so its well-known
 * segments land in deterministic descriptor slots (the paper's
 * "certain well-known segment names have been reserved on each machine
 * to allow the name service to bootstrap itself").
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "names/name_record.h"
#include "rmem/engine.h"
#include "rpc/local_rpc.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "util/status.h"

namespace remora::names {

/** How a clerk resolves lookups that miss its local state (§4.2). */
enum class ProbePolicy : uint8_t
{
    /** Keep probing hash buckets with remote reads until empty/found. */
    kProbeOnly = 0,
    /** Probe a few buckets, then fall back to control transfer. */
    kProbeThenControl,
    /** Ask the remote clerk directly via control transfer. */
    kControlOnly,
};

/** Calibrated costs of the name-service software path (Table 3). */
struct NameServiceCosts
{
    /** User -> kernel system call (trap + argument copy). */
    sim::Duration kernelCall = sim::usec(35);
    /** Clerk-side registry insertion (hash, probe, record write). */
    sim::Duration clerkInsert = sim::usec(30);
    /** Clerk-side lookup (hash, probe, compare). */
    sim::Duration clerkLookup = sim::usec(40);
    /** Kernel-side export work: pinning, tables, generation assignment. */
    sim::Duration exportKernelWork = sim::usec(455);
    /** Kernel-side revoke work: unpin, table teardown. */
    sim::Duration revokeKernelWork = sim::usec(110);
    /** Parsing/validating one fetched record (on a hit). */
    sim::Duration recordParse = sim::usec(15);
    /** Flag/name comparison per probe (miss path). */
    sim::Duration probeCompare = sim::usec(4);
};

/** Behaviour knobs of a clerk. */
struct NameClerkParams
{
    /** Buckets in the registry hash table. */
    uint32_t buckets = 512;
    /** Lookup resolution strategy. */
    ProbePolicy policy = ProbePolicy::kProbeOnly;
    /** Probes before control transfer under kProbeThenControl. */
    uint32_t probeLimit = 7;
    /** Deadline for each remote read (0 = forever). */
    sim::Duration readTimeout = sim::msec(50);
    /** Poll interval while spin-waiting on control-transfer replies. */
    sim::Duration pollInterval = sim::usec(2);
    /** Software-path costs. */
    NameServiceCosts costs;
    /** Local RPC transition costs (client/kernel <-> clerk domain). */
    rpc::LocalRpcCosts localRpc;
};

/** Per-clerk statistics. */
struct NameClerkStats
{
    sim::Counter exportsServed;
    sim::Counter importsServed;
    sim::Counter deletesServed;
    sim::Counter localHits;
    sim::Counter cacheHits;
    sim::Counter remoteReads;
    sim::Counter remoteProbes;
    sim::Counter controlTransfers;
    sim::Counter refreshPurges;
};

/** One node's name-service clerk. */
class NameClerk
{
  public:
    /** Well-known descriptor slot of every clerk's registry segment. */
    static constexpr rmem::SegmentId kRegistryDescriptor = 0;
    /** Well-known descriptor slot of the clerk's scratch segment. */
    static constexpr rmem::SegmentId kScratchDescriptor = 1;
    /** Well-known descriptor slot of the lookup-request segment. */
    static constexpr rmem::SegmentId kRequestDescriptor = 2;

    /**
     * Boot the clerk on @p engine's node. Must be the first exporter on
     * the node (asserts the well-known descriptor slots).
     */
    explicit NameClerk(rmem::RmemEngine &engine,
                       const NameClerkParams &params = {});

    NameClerk(const NameClerk &) = delete;
    NameClerk &operator=(const NameClerk &) = delete;

    /**
     * Import the well-known segments of the clerk on @p node so lookup
     * reads and control transfers can reach it.
     */
    void addPeer(net::NodeId node);

    // ------------------------------------------------------------------
    // The user-visible operations (Table 3 measures these)
    // ------------------------------------------------------------------

    /**
     * Export @p owner's range under @p name (ADDNAME path): kernel
     * call, descriptor + generation assignment, page pinning, local RPC
     * to the clerk, registry insertion.
     *
     * @p owner is a pointer, not a reference: the coroutine suspends
     * while it is live, so the caller explicitly vouches that the
     * process outlives the export (references could silently bind a
     * temporary; see remora-coroutine-ref-param).
     */
    sim::Task<util::Result<rmem::ImportedSegment>> exportByName(
        mem::Process *owner, mem::Vaddr base, uint32_t size,
        rmem::Rights rights, rmem::NotifyPolicy policy,
        std::string name);

    /**
     * Import @p name (LOOKUPNAME path): local registry, then import
     * cache, then remote resolution at @p hint per the probe policy.
     *
     * @param name The segment name.
     * @param hint User-supplied hint naming the likely exporter (§4.2);
     *        without one, peers are tried in id order.
     * @param forceRemote Skip the import cache ("users can force a
     *        specific import operation to do an explicit remote
     *        lookup").
     * @param policyOverride Resolve with this probe policy instead of
     *        the clerk-wide one (per §4.2 the right choice is
     *        application-dependent).
     */
    sim::Task<util::Result<rmem::ImportedSegment>> import(
        std::string name, std::optional<net::NodeId> hint,
        bool forceRemote = false,
        std::optional<ProbePolicy> policyOverride = std::nullopt);

    /**
     * Delete @p name and revoke the segment (DELETENAME path). Deletion
     * is local-only: remote cached copies age out via refresh.
     */
    sim::Task<util::Status> revoke(std::string name);

    /**
     * One cache-refresh pass: re-read every cached import from its
     * home clerk; purge entries that vanished or changed generation.
     */
    sim::Task<void> refresh();

    /** Run refresh() every @p interval forever. */
    void startPeriodicRefresh(sim::Duration interval);

    /** Counters. */
    const NameClerkStats &stats() const { return stats_; }

    /** The engine this clerk runs over. */
    rmem::RmemEngine &engine() { return engine_; }

    /** Parameters in force. */
    const NameClerkParams &params() const { return params_; }

  private:
    /** Find a name in the local registry memory; nullopt if absent. */
    std::optional<NameRecord> localFind(const std::string &name);

    /** Insert a record into the local registry memory. */
    util::Status localInsert(const NameRecord &rec);

    /** Mark a local registry record deleted. */
    bool localDelete(const std::string &name);

    /** Resolve remotely at @p node per @p policy. */
    sim::Task<util::Result<NameRecord>> resolveAt(net::NodeId node,
                                                  std::string name,
                                                  ProbePolicy policy);

    /** Probe @p node's registry with remote reads. */
    sim::Task<util::Result<NameRecord>> probeRemote(net::NodeId node,
                                                    std::string name,
                                                    uint32_t maxProbes);

    /** Ask @p node's clerk via remote write + notification. */
    sim::Task<util::Result<NameRecord>> controlTransferLookup(
        net::NodeId node, std::string name);

    /** Serve one incoming control-transfer lookup request. */
    void onLookupRequest(const rmem::Notification &n);

    /** Registry bucket base offset for probe @p i of @p name. */
    uint32_t bucketOffset(const std::string &name, uint32_t probe) const;

    rmem::RmemEngine &engine_;
    NameClerkParams params_;
    mem::Process &process_;
    rpc::LocalRpc lrpc_;

    mem::Vaddr registryBase_ = 0;
    mem::Vaddr scratchBase_ = 0;
    mem::Vaddr requestBase_ = 0;
    rmem::ImportedSegment registryHandle_;
    rmem::ImportedSegment scratchHandle_;
    rmem::ImportedSegment requestHandle_;

    struct Peer
    {
        rmem::ImportedSegment registry;
        rmem::ImportedSegment request;
    };
    std::unordered_map<net::NodeId, Peer> peers_;

    /** name -> descriptor of segments exported through this clerk. */
    std::unordered_map<std::string, rmem::SegmentId> localExports_;

    struct CachedImport
    {
        NameRecord record;
        net::NodeId home;
    };
    std::unordered_map<std::string, CachedImport> importCache_;

    uint32_t ctSeq_ = 0;
    NameClerkStats stats_;
};

} // namespace remora::names
