/**
 * @file
 * The name-registry record: the unit of the name service's shared state.
 *
 * Each clerk's well-known exported segment is an open-addressed hash
 * table of these fixed 64-byte records. The layout is identical on all
 * clerks and every clerk uses the identical hash function, so an
 * importer can compute the bucket a name should occupy on a *remote*
 * clerk and fetch it with a single remote read (§4.2).
 *
 * The first word is the record's flag/validity word. It is written
 * last on insertion and first on deletion, so the single-word
 * local-vs-remote atomicity guarantee (§3.4) gives remote readers a
 * consistent view with one writer and many readers — the paper's
 * flag-word synchronization, used verbatim here.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "net/cell.h"
#include "rmem/segment.h"

namespace remora::names {

/** Record flag-word states. */
enum class RecordFlag : uint32_t
{
    kEmpty = 0,
    kValid = 1,
    kDeleted = 2,
};

/** Maximum segment-name length the registry stores. */
inline constexpr size_t kMaxNameLen = 39;

/**
 * One registry entry, fixed 64 bytes in memory.
 *
 * The first kPrefixBytes (24) carry everything a remote probe needs —
 * flag, home node, descriptor, rights, generation, size, and a 64-bit
 * hash of the name — so a probe's read reply fits in a single ATM cell
 * (the paper: "the information that is retrieved on a lookup operation
 * fits in a single ATM cell"). The full name follows for local
 * operations and control-transfer lookups.
 */
struct NameRecord
{
    /** Encoded size of a record. */
    static constexpr uint32_t kBytes = 64;

    /** Bytes a remote probe fetches (single-cell reply). */
    static constexpr uint32_t kPrefixBytes = 24;

    RecordFlag flag = RecordFlag::kEmpty;
    /** Exporting node. */
    net::NodeId node = 0;
    /** Descriptor slot on the exporting node. */
    rmem::SegmentId descriptor = 0;
    /** Rights the export grants. */
    rmem::Rights rights = rmem::Rights::kNone;
    /** Export generation (stale imports are detected with this). */
    rmem::Generation generation = 0;
    /** Segment size in bytes. */
    uint32_t size = 0;
    /** The segment's name (<= kMaxNameLen chars). */
    std::string name;

    /** Serialize into exactly kBytes at @p out. */
    void encode(std::span<uint8_t> out) const;

    /** Parse a record from exactly kBytes at @p in. */
    static NameRecord decode(std::span<const uint8_t> in);

    /**
     * Parse just the probe prefix (kPrefixBytes); the name field is
     * left empty and nameHash() must be used for matching.
     */
    static NameRecord decodePrefix(std::span<const uint8_t> in,
                                   uint64_t *nameHash);

    /** The hash stored in the prefix for remote name matching. */
    static uint64_t nameHashOf(const std::string &name);

    /** The import handle this record describes. */
    rmem::ImportedSegment
    toHandle() const
    {
        return rmem::ImportedSegment{node, descriptor, generation, size,
                                     rights};
    }
};

/** The cluster-wide registry hash: identical on every clerk (FNV-1a). */
uint64_t registryHash(const std::string &name);

} // namespace remora::names
