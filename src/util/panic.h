/**
 * @file
 * Error-termination helpers, following the gem5 panic()/fatal()
 * distinction: panic() for internal invariant violations (library bugs),
 * fatal() for conditions caused by the caller's configuration.
 */
#pragma once

#include <string>

namespace remora::util {

/**
 * Terminate because an internal invariant was violated. Never returns.
 *
 * Use for conditions that indicate a bug in remora itself, regardless of
 * how the library was configured.
 *
 * @param file Source file of the violation (usually __FILE__).
 * @param line Source line of the violation (usually __LINE__).
 * @param msg Human-readable description.
 */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/**
 * Terminate because of a caller/configuration error. Never returns.
 *
 * Use for conditions that a user of the library can cause (invalid
 * topology, impossible parameters), not for internal bugs.
 *
 * @param file Source file of the check (usually __FILE__).
 * @param line Source line of the check (usually __LINE__).
 * @param msg Human-readable description.
 */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/**
 * Install a hook run (once, reentrancy-guarded) before panic()/fatal()
 * terminate the process. Higher layers use it to flush diagnostic state
 * — e.g. sim::Logger registers its recent-event ring — without util
 * depending on them. Pass nullptr to clear.
 */
void setPanicHook(void (*hook)());

} // namespace remora::util

/** Report an internal invariant violation and abort. */
#define REMORA_PANIC(msg) ::remora::util::panicImpl(__FILE__, __LINE__, (msg))

/** Report a user/configuration error and exit. */
#define REMORA_FATAL(msg) ::remora::util::fatalImpl(__FILE__, __LINE__, (msg))

/** Check an internal invariant; panic with the condition text on failure. */
#define REMORA_ASSERT(cond)                                                    \
    do {                                                                       \
        if (!(cond)) {                                                         \
            ::remora::util::panicImpl(__FILE__, __LINE__,                      \
                                      "assertion failed: " #cond);             \
        }                                                                      \
    } while (0)
