/**
 * @file
 * Endian-explicit byte cursors used for all wire formats.
 *
 * Every on-wire structure in remora (ATM cells, remote-memory protocol
 * headers, RPC marshaling) is encoded through these cursors rather than
 * by casting structs, so layouts are identical on every host and every
 * field width is explicit at the encode site. Wire order is
 * little-endian (the DECstation R3000 ran little-endian Ultrix; the
 * paper's heterogeneity section treats byte-swap on PIO as the
 * accommodation for other orders).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace remora::util {

/** Growable encode cursor appending little-endian fields to a buffer. */
class ByteWriter
{
  public:
    ByteWriter() = default;

    /** Start with reserved capacity to avoid reallocation in hot paths. */
    explicit ByteWriter(size_t reserve) { buf_.reserve(reserve); }

    /** Append a single octet. */
    void putU8(uint8_t v) { buf_.push_back(v); }

    /** Append a 16-bit value, little-endian. */
    void putU16(uint16_t v);

    /** Append a 32-bit value, little-endian. */
    void putU32(uint32_t v);

    /** Append a 64-bit value, little-endian. */
    void putU64(uint64_t v);

    /** Append raw bytes verbatim. */
    void putBytes(std::span<const uint8_t> data);

    /** Append @p count zero octets (padding). */
    void putZeros(size_t count);

    /**
     * Append a length-prefixed (u32) string, padded to 4-byte alignment,
     * XDR style.
     */
    void putString(const std::string &s);

    /** Number of bytes encoded so far. */
    size_t size() const { return buf_.size(); }

    /** View of the encoded bytes; invalidated by further puts. */
    std::span<const uint8_t> bytes() const { return buf_; }

    /** Move the encoded buffer out, leaving this writer empty. */
    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Decode cursor over a byte span.
 *
 * Reads past the end set an overflow flag and return zeros rather than
 * touching out-of-bounds memory; callers check ok() once after decoding
 * a unit (mirroring how the kernel emulation validates a whole request).
 */
class ByteReader
{
  public:
    /** Read from @p data, which must outlive the reader. */
    explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

    /** Decode one octet. */
    uint8_t getU8();

    /** Decode a little-endian 16-bit value. */
    uint16_t getU16();

    /** Decode a little-endian 32-bit value. */
    uint32_t getU32();

    /** Decode a little-endian 64-bit value. */
    uint64_t getU64();

    /** Copy @p count raw bytes into @p out. */
    void getBytes(std::span<uint8_t> out);

    /** View (without copying) @p count bytes and advance. */
    std::span<const uint8_t> viewBytes(size_t count);

    /** Decode a u32-length-prefixed, 4-byte-padded string. */
    std::string getString();

    /** Skip @p count bytes. */
    void skip(size_t count);

    /** Bytes not yet consumed. */
    size_t remaining() const { return data_.size() - pos_; }

    /** True while no decode has run past the end of the buffer. */
    bool ok() const { return !overflow_; }

  private:
    /** Check that @p count more bytes exist; set overflow otherwise. */
    bool ensure(size_t count);

    std::span<const uint8_t> data_;
    size_t pos_ = 0;
    bool overflow_ = false;
};

} // namespace remora::util
