/**
 * @file
 * Cyclic-redundancy checks used by the simulated ATM substrate.
 *
 * CRC-8 implements the ATM Header Error Control (HEC) polynomial
 * x^8 + x^2 + x + 1 (0x07) over the first four header octets, as defined
 * by ITU-T I.432. CRC-32 implements the IEEE 802.3 polynomial used by the
 * AAL5 trailer.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace remora::util {

/**
 * Compute the ATM HEC CRC-8 (polynomial 0x07, init 0) over a byte span.
 *
 * The ATM standard additionally XORs the result with 0x55 ("coset"
 * addition) to improve cell delineation; we follow that convention so the
 * values match real HEC bytes.
 *
 * @param data Bytes covered by the check (the four non-HEC header octets).
 * @return The HEC byte to place in (or compare against) octet 5.
 */
uint8_t crc8Hec(std::span<const uint8_t> data);

/**
 * Compute the IEEE 802.3 CRC-32 (reflected, init ~0, final xor ~0).
 *
 * This is the checksum the AAL5 trailer carries over the whole CS-PDU.
 *
 * @param data Bytes covered by the check.
 * @return 32-bit checksum.
 */
uint32_t crc32Ieee(std::span<const uint8_t> data);

/**
 * Incrementally updatable CRC-32, for streaming reassembly.
 *
 * Feed bytes with update() as cells arrive; value() yields the same
 * result as crc32Ieee() over the concatenation.
 */
class Crc32
{
  public:
    /** Absorb more bytes into the running checksum. */
    void update(std::span<const uint8_t> data);

    /** Final checksum over everything absorbed so far. */
    uint32_t value() const { return ~state_; }

    /** Reset to the empty-input state. */
    void reset() { state_ = 0xffffffffu; }

  private:
    uint32_t state_ = 0xffffffffu;
};

} // namespace remora::util
