#include "util/panic.h"

#include <cstdio>
#include <cstdlib>

namespace remora::util {

namespace {

void (*gPanicHook)() = nullptr;

/** Run the hook at most once, even if the hook itself panics. */
void
runPanicHook()
{
    static bool ran = false;
    if (ran || gPanicHook == nullptr) {
        return;
    }
    ran = true;
    gPanicHook();
}

} // namespace

void
setPanicHook(void (*hook)())
{
    gPanicHook = hook;
}

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "remora panic: %s:%d: %s\n", file, line, msg.c_str());
    runPanicHook();
    std::fflush(stderr);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "remora fatal: %s:%d: %s\n", file, line, msg.c_str());
    runPanicHook();
    std::fflush(stderr);
    std::exit(1);
}

} // namespace remora::util
