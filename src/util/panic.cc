#include "util/panic.h"

#include <cstdio>
#include <cstdlib>

namespace remora::util {

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "remora panic: %s:%d: %s\n", file, line, msg.c_str());
    std::fflush(stderr);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "remora fatal: %s:%d: %s\n", file, line, msg.c_str());
    std::fflush(stderr);
    std::exit(1);
}

} // namespace remora::util
