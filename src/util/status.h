/**
 * @file
 * Lightweight error propagation: Status codes and Result<T>.
 *
 * The remote-memory protocol has a small, closed set of rejection causes
 * (the NAK reasons of the kernel emulation layer), so errors are an enum
 * plus an optional message rather than exceptions; simulated kernel code
 * runs inside event callbacks where exceptions would cross the scheduler.
 */
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/panic.h"

namespace remora::util {

/** Closed set of error causes shared across remora subsystems. */
enum class ErrorCode : uint8_t
{
    kOk = 0,
    /** Descriptor id does not name a live segment. */
    kBadDescriptor,
    /** Generation number on the request is stale. */
    kStaleGeneration,
    /** Offset/count falls outside the segment. */
    kOutOfBounds,
    /** Operation not permitted by the segment's rights mask. */
    kAccessDenied,
    /** Segment is write-inhibited for synchronization. */
    kWriteInhibited,
    /** Name not present in a registry. */
    kNotFound,
    /** Name already present in a registry. */
    kAlreadyExists,
    /** Request or reply failed to decode. */
    kMalformed,
    /** Operation did not complete within its deadline. */
    kTimeout,
    /** Resource exhaustion (tables full, fifo full, no memory). */
    kResource,
    /** Invalid argument from the caller. */
    kInvalidArgument,
    /** Unspecified internal failure. */
    kInternal,
};

/** Human-readable name for an error code. */
const char *errorCodeName(ErrorCode code);

/** Success-or-error value without a payload. */
class Status
{
  public:
    /** Success. */
    Status() = default;

    /** Failure with a code and optional context message. */
    Status(ErrorCode code, std::string message = {})
        : code_(code), message_(std::move(message))
    {}

    /** Named constructor for success, for symmetry with error(). */
    static Status okStatus() { return Status(); }

    /** Named constructor for failure. */
    static Status
    error(ErrorCode code, std::string message = {})
    {
        return Status(code, std::move(message));
    }

    /** True when no error occurred. */
    bool ok() const { return code_ == ErrorCode::kOk; }

    /** The error code (kOk on success). */
    ErrorCode code() const { return code_; }

    /** The context message; may be empty. */
    const std::string &message() const { return message_; }

    /** "code: message" rendering for logs. */
    std::string toString() const;

  private:
    ErrorCode code_ = ErrorCode::kOk;
    std::string message_;
};

/**
 * A value of type T or a Status describing why it is absent.
 *
 * @tparam T The payload type carried on success.
 */
template <typename T>
class Result
{
  public:
    /** Successful result carrying a value. */
    Result(T value) : state_(std::move(value)) {}

    /**
     * Failed result; @p status must not be ok (that would leave the
     * payload indeterminate).
     */
    Result(Status status) : state_(std::move(status))
    {
        REMORA_ASSERT(!std::get<Status>(state_).ok());
    }

    /** True when a value is present. */
    bool ok() const { return std::holds_alternative<T>(state_); }

    /** The status; kOk when a value is present. */
    Status
    status() const
    {
        return ok() ? Status() : std::get<Status>(state_);
    }

    /** Access the value; the result must be ok. */
    const T &
    value() const
    {
        REMORA_ASSERT(ok());
        return std::get<T>(state_);
    }

    /** Mutable access to the value; the result must be ok. */
    T &
    value()
    {
        REMORA_ASSERT(ok());
        return std::get<T>(state_);
    }

    /** Move the value out; the result must be ok. */
    T
    take()
    {
        REMORA_ASSERT(ok());
        return std::move(std::get<T>(state_));
    }

  private:
    std::variant<T, Status> state_;
};

} // namespace remora::util
