#include "util/bytes.h"

#include <algorithm>
#include <cstring>

namespace remora::util {

void
ByteWriter::putU16(uint16_t v)
{
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void
ByteWriter::putU32(uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8) {
        buf_.push_back(static_cast<uint8_t>(v >> shift));
    }
}

void
ByteWriter::putU64(uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8) {
        buf_.push_back(static_cast<uint8_t>(v >> shift));
    }
}

void
ByteWriter::putBytes(std::span<const uint8_t> data)
{
    buf_.insert(buf_.end(), data.begin(), data.end());
}

void
ByteWriter::putZeros(size_t count)
{
    buf_.insert(buf_.end(), count, 0);
}

void
ByteWriter::putString(const std::string &s)
{
    putU32(static_cast<uint32_t>(s.size()));
    putBytes(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t *>(s.data()), s.size()));
    size_t pad = (4 - (s.size() % 4)) % 4;
    putZeros(pad);
}

bool
ByteReader::ensure(size_t count)
{
    if (pos_ + count > data_.size()) {
        overflow_ = true;
        pos_ = data_.size();
        return false;
    }
    return true;
}

uint8_t
ByteReader::getU8()
{
    if (!ensure(1)) {
        return 0;
    }
    return data_[pos_++];
}

uint16_t
ByteReader::getU16()
{
    if (!ensure(2)) {
        return 0;
    }
    uint16_t v = static_cast<uint16_t>(data_[pos_] |
                                       (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
}

uint32_t
ByteReader::getU32()
{
    if (!ensure(4)) {
        return 0;
    }
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
        v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
    }
    pos_ += 4;
    return v;
}

uint64_t
ByteReader::getU64()
{
    if (!ensure(8)) {
        return 0;
    }
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
    }
    pos_ += 8;
    return v;
}

void
ByteReader::getBytes(std::span<uint8_t> out)
{
    if (!ensure(out.size())) {
        std::fill(out.begin(), out.end(), uint8_t{0});
        return;
    }
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
}

std::span<const uint8_t>
ByteReader::viewBytes(size_t count)
{
    if (!ensure(count)) {
        return {};
    }
    auto view = data_.subspan(pos_, count);
    pos_ += count;
    return view;
}

std::string
ByteReader::getString()
{
    uint32_t len = getU32();
    auto view = viewBytes(len);
    if (!ok()) {
        return {};
    }
    std::string s(reinterpret_cast<const char *>(view.data()), view.size());
    skip((4 - (len % 4)) % 4);
    return s;
}

void
ByteReader::skip(size_t count)
{
    if (ensure(count)) {
        pos_ += count;
    }
}

} // namespace remora::util
