#include "util/crc.h"

#include <array>

namespace remora::util {
namespace {

/** Build the 256-entry table for the (non-reflected) CRC-8 poly 0x07. */
constexpr std::array<uint8_t, 256>
makeCrc8Table()
{
    std::array<uint8_t, 256> table{};
    for (int i = 0; i < 256; ++i) {
        uint8_t crc = static_cast<uint8_t>(i);
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc & 0x80) ? static_cast<uint8_t>((crc << 1) ^ 0x07)
                               : static_cast<uint8_t>(crc << 1);
        }
        table[static_cast<size_t>(i)] = crc;
    }
    return table;
}

/** Build the 256-entry table for the reflected IEEE CRC-32 poly. */
constexpr std::array<uint32_t, 256>
makeCrc32Table()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc & 1u) ? (crc >> 1) ^ 0xedb88320u : crc >> 1;
        }
        table[i] = crc;
    }
    return table;
}

constexpr auto kCrc8Table = makeCrc8Table();
constexpr auto kCrc32Table = makeCrc32Table();

} // namespace

uint8_t
crc8Hec(std::span<const uint8_t> data)
{
    uint8_t crc = 0;
    for (uint8_t b : data) {
        crc = kCrc8Table[crc ^ b];
    }
    // ITU-T I.432 coset addition.
    return static_cast<uint8_t>(crc ^ 0x55);
}

uint32_t
crc32Ieee(std::span<const uint8_t> data)
{
    Crc32 crc;
    crc.update(data);
    return crc.value();
}

void
Crc32::update(std::span<const uint8_t> data)
{
    uint32_t crc = state_;
    for (uint8_t b : data) {
        crc = (crc >> 8) ^ kCrc32Table[(crc ^ b) & 0xffu];
    }
    state_ = crc;
}

} // namespace remora::util
