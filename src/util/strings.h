/**
 * @file
 * Small string/formatting helpers shared by benches and reports.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace remora::util {

/** Render nanoseconds as a human-friendly "12.3 us" style string. */
std::string formatDuration(int64_t nanos);

/** Render a byte count as "4.0 KB" style string. */
std::string formatBytes(uint64_t bytes);

/** Render a count with thousands separators, e.g. 28,860,744. */
std::string formatCount(uint64_t count);

/**
 * Fixed-width plain-text table builder for bench output.
 *
 * Collect rows with addRow(); render() right-aligns numeric-looking
 * columns and left-aligns the rest, matching the row/column layout the
 * paper's tables use.
 */
class TextTable
{
  public:
    /** Define the header row. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator before the next row. */
    void addSeparator();

    /** Render the table to a string, one row per line. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; // empty row == separator
};

} // namespace remora::util
