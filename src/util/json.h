/**
 * @file
 * Minimal streaming JSON writer and recursive-descent reader.
 *
 * remora emits JSON in three places — Chrome trace files, metric dumps,
 * and machine-readable bench reports — and all three need exactly the
 * same few primitives: objects, arrays, escaped strings, and numbers
 * that round-trip. JsonWriter keeps a context stack so commas and
 * closing brackets are placed automatically; misuse (closing an array
 * as an object, keys outside objects) asserts.
 *
 * JsonValue is the matching reader: a small DOM parsed by
 * JsonValue::parse(), grown for the bench_diff regression gate (which
 * must read the reports the benches wrote). It handles all of standard
 * JSON; parse errors come back as a Status naming the byte offset.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace remora::util {

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

/** Context-tracking JSON emitter. */
class JsonWriter
{
  public:
    /** Begin an object; as a value in an array/after key() in an object. */
    JsonWriter &beginObject();

    /** Begin an array. */
    JsonWriter &beginArray();

    /** Close the innermost object. */
    JsonWriter &endObject();

    /** Close the innermost array. */
    JsonWriter &endArray();

    /** Emit a key inside an object; must be followed by one value. */
    JsonWriter &key(std::string_view k);

    /** Emit a string value. */
    JsonWriter &value(std::string_view v);

    /** Emit a string value (avoids const char* -> bool selection). */
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }

    /** Emit a double value (NaN/inf become null). */
    JsonWriter &value(double v);

    /** Emit an unsigned integer value. */
    JsonWriter &value(uint64_t v);

    /** Emit a signed integer value. */
    JsonWriter &value(int64_t v);

    /** Emit a boolean value. */
    JsonWriter &value(bool v);

    /** Shorthand: key + string value. */
    JsonWriter &
    kv(std::string_view k, std::string_view v)
    {
        return key(k).value(v);
    }

    /** Shorthand: key + string value (avoids const char* -> bool selection). */
    JsonWriter &
    kv(std::string_view k, const char *v)
    {
        return key(k).value(std::string_view(v));
    }

    /** Shorthand: key + double value. */
    JsonWriter &kv(std::string_view k, double v) { return key(k).value(v); }

    /** Shorthand: key + unsigned value. */
    JsonWriter &kv(std::string_view k, uint64_t v) { return key(k).value(v); }

    /** Shorthand: key + signed value. */
    JsonWriter &kv(std::string_view k, int64_t v) { return key(k).value(v); }

    /** Shorthand: key + boolean value. */
    JsonWriter &kv(std::string_view k, bool v) { return key(k).value(v); }

    /**
     * The completed document. All opened scopes must have been closed.
     */
    const std::string &str() const;

  private:
    enum class Scope : uint8_t
    {
        kObject,
        kArray,
    };

    /** Emit separators/validation before a value lands in this scope. */
    void preValue();

    std::string out_;
    std::vector<Scope> stack_;
    /** A value has already been emitted in the current scope. */
    std::vector<bool> sawValue_;
    /** key() ran and its value has not arrived yet. */
    bool pendingKey_ = false;
};

/** A parsed JSON document node. */
class JsonValue
{
  public:
    /** JSON's seven value kinds, numbers collapsed to double. */
    enum class Type : uint8_t
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    /**
     * Parse @p text as one JSON document (trailing garbage is an
     * error). Failures name the byte offset.
     */
    static Result<JsonValue> parse(std::string_view text);

    JsonValue() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isBool() const { return type_ == Type::kBool; }
    bool isNumber() const { return type_ == Type::kNumber; }
    bool isString() const { return type_ == Type::kString; }
    bool isArray() const { return type_ == Type::kArray; }
    bool isObject() const { return type_ == Type::kObject; }

    /** The boolean payload (false unless isBool()). */
    bool asBool() const { return bool_; }

    /** The numeric payload (0 unless isNumber()). */
    double asNumber() const { return number_; }

    /** The string payload (empty unless isString()). */
    const std::string &asString() const { return string_; }

    /** Array elements (empty unless isArray()). */
    const std::vector<JsonValue> &items() const { return items_; }

    /** Object members in document order (empty unless isObject()). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** Array/object element count. */
    size_t size() const { return isObject() ? members_.size() : items_.size(); }

    /**
     * Member @p key of an object, or nullptr when absent (or when this
     * is not an object). First match wins on duplicate keys.
     */
    const JsonValue *find(std::string_view key) const;

  private:
    friend class JsonParser;

    Type type_ = Type::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace remora::util
