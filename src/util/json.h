/**
 * @file
 * Minimal streaming JSON writer.
 *
 * remora emits JSON in three places — Chrome trace files, metric dumps,
 * and machine-readable bench reports — and all three need exactly the
 * same few primitives: objects, arrays, escaped strings, and numbers
 * that round-trip. JsonWriter keeps a context stack so commas and
 * closing brackets are placed automatically; misuse (closing an array
 * as an object, keys outside objects) asserts.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace remora::util {

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

/** Context-tracking JSON emitter. */
class JsonWriter
{
  public:
    /** Begin an object; as a value in an array/after key() in an object. */
    JsonWriter &beginObject();

    /** Begin an array. */
    JsonWriter &beginArray();

    /** Close the innermost object. */
    JsonWriter &endObject();

    /** Close the innermost array. */
    JsonWriter &endArray();

    /** Emit a key inside an object; must be followed by one value. */
    JsonWriter &key(std::string_view k);

    /** Emit a string value. */
    JsonWriter &value(std::string_view v);

    /** Emit a string value (avoids const char* -> bool selection). */
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }

    /** Emit a double value (NaN/inf become null). */
    JsonWriter &value(double v);

    /** Emit an unsigned integer value. */
    JsonWriter &value(uint64_t v);

    /** Emit a signed integer value. */
    JsonWriter &value(int64_t v);

    /** Emit a boolean value. */
    JsonWriter &value(bool v);

    /** Shorthand: key + string value. */
    JsonWriter &
    kv(std::string_view k, std::string_view v)
    {
        return key(k).value(v);
    }

    /** Shorthand: key + string value (avoids const char* -> bool selection). */
    JsonWriter &
    kv(std::string_view k, const char *v)
    {
        return key(k).value(std::string_view(v));
    }

    /** Shorthand: key + double value. */
    JsonWriter &kv(std::string_view k, double v) { return key(k).value(v); }

    /** Shorthand: key + unsigned value. */
    JsonWriter &kv(std::string_view k, uint64_t v) { return key(k).value(v); }

    /** Shorthand: key + signed value. */
    JsonWriter &kv(std::string_view k, int64_t v) { return key(k).value(v); }

    /** Shorthand: key + boolean value. */
    JsonWriter &kv(std::string_view k, bool v) { return key(k).value(v); }

    /**
     * The completed document. All opened scopes must have been closed.
     */
    const std::string &str() const;

  private:
    enum class Scope : uint8_t
    {
        kObject,
        kArray,
    };

    /** Emit separators/validation before a value lands in this scope. */
    void preValue();

    std::string out_;
    std::vector<Scope> stack_;
    /** A value has already been emitted in the current scope. */
    std::vector<bool> sawValue_;
    /** key() ran and its value has not arrived yet. */
    bool pendingKey_ = false;
};

} // namespace remora::util
