/**
 * @file
 * Stable, seedable hashing for registries and cache indexing.
 *
 * The name-service design (paper §4.2) requires every clerk to use the
 * *identical* hash function so a remote importer can compute the bucket
 * a name occupies on another machine; std::hash gives no such guarantee,
 * so we pin FNV-1a here.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace remora::util {

/** 64-bit FNV-1a over raw bytes. */
constexpr uint64_t
fnv1a(std::span<const uint8_t> data, uint64_t seed = 0xcbf29ce484222325ull)
{
    uint64_t h = seed;
    for (uint8_t b : data) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** 64-bit FNV-1a over a string view. */
constexpr uint64_t
fnv1a(std::string_view s, uint64_t seed = 0xcbf29ce484222325ull)
{
    uint64_t h = seed;
    for (char c : s) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Second-stage mix (splitmix64 finalizer) for double hashing / rehash
 * probes in the open-addressed registries.
 */
constexpr uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace remora::util
