#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "util/panic.h"
#include "util/status.h"

namespace remora::util {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kOk: return "ok";
      case ErrorCode::kBadDescriptor: return "bad_descriptor";
      case ErrorCode::kStaleGeneration: return "stale_generation";
      case ErrorCode::kOutOfBounds: return "out_of_bounds";
      case ErrorCode::kAccessDenied: return "access_denied";
      case ErrorCode::kWriteInhibited: return "write_inhibited";
      case ErrorCode::kNotFound: return "not_found";
      case ErrorCode::kAlreadyExists: return "already_exists";
      case ErrorCode::kMalformed: return "malformed";
      case ErrorCode::kTimeout: return "timeout";
      case ErrorCode::kResource: return "resource";
      case ErrorCode::kInvalidArgument: return "invalid_argument";
      case ErrorCode::kInternal: return "internal";
    }
    return "unknown";
}

std::string
Status::toString() const
{
    if (ok()) {
        return "ok";
    }
    std::string s = errorCodeName(code_);
    if (!message_.empty()) {
        s += ": ";
        s += message_;
    }
    return s;
}

std::string
formatDuration(int64_t nanos)
{
    char buf[64];
    double v = static_cast<double>(nanos);
    if (nanos < 1000) {
        std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(nanos));
    } else if (nanos < 1000 * 1000) {
        std::snprintf(buf, sizeof(buf), "%.1f us", v / 1e3);
    } else if (nanos < 1000ll * 1000 * 1000) {
        std::snprintf(buf, sizeof(buf), "%.2f ms", v / 1e6);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3f s", v / 1e9);
    }
    return buf;
}

std::string
formatBytes(uint64_t bytes)
{
    char buf[64];
    double v = static_cast<double>(bytes);
    if (bytes < 1024) {
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    } else if (bytes < 1024ull * 1024) {
        std::snprintf(buf, sizeof(buf), "%.1f KB", v / 1024.0);
    } else if (bytes < 1024ull * 1024 * 1024) {
        std::snprintf(buf, sizeof(buf), "%.1f MB", v / (1024.0 * 1024.0));
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f GB", v / (1024.0 * 1024.0 * 1024.0));
    }
    return buf;
}

std::string
formatCount(uint64_t count)
{
    std::string digits = std::to_string(count);
    std::string out;
    int pos = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it, ++pos) {
        if (pos > 0 && pos % 3 == 0) {
            out.push_back(',');
        }
        out.push_back(*it);
    }
    std::reverse(out.begin(), out.end());
    return out;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{}

void
TextTable::addRow(std::vector<std::string> row)
{
    REMORA_ASSERT(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back(); // empty row marks a separator
}

namespace {

/** Heuristic: treat a cell as numeric if it starts with digit/sign/dot. */
bool
looksNumeric(const std::string &s)
{
    if (s.empty()) {
        return false;
    }
    char c = s[0];
    return std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
           c == '+' || c == '.';
}

} // namespace

std::string
TextTable::render() const
{
    std::vector<size_t> widths(header_.size());
    std::vector<bool> numeric(header_.size(), true);
    for (size_t i = 0; i < header_.size(); ++i) {
        widths[i] = header_[i].size();
    }
    for (const auto &row : rows_) {
        if (row.empty()) {
            continue;
        }
        for (size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
            if (!row[i].empty() && !looksNumeric(row[i])) {
                numeric[i] = false;
            }
        }
    }

    std::ostringstream out;
    auto emitRow = [&](const std::vector<std::string> &row, bool is_header) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i > 0) {
                out << "  ";
            }
            const std::string &cell = row[i];
            size_t pad = widths[i] - cell.size();
            bool right = numeric[i] && !is_header;
            if (right) {
                out << std::string(pad, ' ') << cell;
            } else {
                out << cell << std::string(pad, ' ');
            }
        }
        out << '\n';
    };

    emitRow(header_, true);
    size_t total = 0;
    for (size_t w : widths) {
        total += w;
    }
    total += 2 * (widths.size() - 1);
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_) {
        if (row.empty()) {
            out << std::string(total, '-') << '\n';
        } else {
            emitRow(row, false);
        }
    }
    return out.str();
}

} // namespace remora::util
