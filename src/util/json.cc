#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/panic.h"

namespace remora::util {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::preValue()
{
    if (stack_.empty()) {
        REMORA_ASSERT(out_.empty()); // only one top-level value
        return;
    }
    if (stack_.back() == Scope::kObject) {
        REMORA_ASSERT(pendingKey_); // object values need a key first
        pendingKey_ = false;
        return;
    }
    if (sawValue_.back()) {
        out_ += ',';
    }
    sawValue_.back() = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    preValue();
    out_ += '{';
    stack_.push_back(Scope::kObject);
    sawValue_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    preValue();
    out_ += '[';
    stack_.push_back(Scope::kArray);
    sawValue_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    REMORA_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject);
    REMORA_ASSERT(!pendingKey_);
    stack_.pop_back();
    sawValue_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    REMORA_ASSERT(!stack_.empty() && stack_.back() == Scope::kArray);
    stack_.pop_back();
    sawValue_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    REMORA_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject);
    REMORA_ASSERT(!pendingKey_);
    if (sawValue_.back()) {
        out_ += ',';
    }
    sawValue_.back() = true;
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    preValue();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    preValue();
    if (!std::isfinite(v)) {
        out_ += "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    preValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    preValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    preValue();
    out_ += v ? "true" : "false";
    return *this;
}

const std::string &
JsonWriter::str() const
{
    REMORA_ASSERT(stack_.empty());
    return out_;
}

} // namespace remora::util
