#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/panic.h"

namespace remora::util {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::preValue()
{
    if (stack_.empty()) {
        REMORA_ASSERT(out_.empty()); // only one top-level value
        return;
    }
    if (stack_.back() == Scope::kObject) {
        REMORA_ASSERT(pendingKey_); // object values need a key first
        pendingKey_ = false;
        return;
    }
    if (sawValue_.back()) {
        out_ += ',';
    }
    sawValue_.back() = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    preValue();
    out_ += '{';
    stack_.push_back(Scope::kObject);
    sawValue_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    preValue();
    out_ += '[';
    stack_.push_back(Scope::kArray);
    sawValue_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    REMORA_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject);
    REMORA_ASSERT(!pendingKey_);
    stack_.pop_back();
    sawValue_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    REMORA_ASSERT(!stack_.empty() && stack_.back() == Scope::kArray);
    stack_.pop_back();
    sawValue_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    REMORA_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject);
    REMORA_ASSERT(!pendingKey_);
    if (sawValue_.back()) {
        out_ += ',';
    }
    sawValue_.back() = true;
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    preValue();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    preValue();
    if (!std::isfinite(v)) {
        out_ += "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    preValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    preValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    preValue();
    out_ += v ? "true" : "false";
    return *this;
}

const std::string &
JsonWriter::str() const
{
    REMORA_ASSERT(stack_.empty());
    return out_;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    for (const auto &[k, v] : members_) {
        if (k == key) {
            return &v;
        }
    }
    return nullptr;
}

/** Recursive-descent parser over one document; friend of JsonValue. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    Result<JsonValue>
    run()
    {
        JsonValue root;
        Status s = parseValue(root, 0);
        if (!s.ok()) {
            return s;
        }
        skipWs();
        if (pos_ != text_.size()) {
            return fail("trailing characters after document");
        }
        return root;
    }

  private:
    /** Nesting bound; ours are shallow, runaways should not stack out. */
    static constexpr int kMaxDepth = 64;

    Status
    fail(const std::string &what) const
    {
        return Status(ErrorCode::kInvalidArgument,
                      "json: " + what + " at offset " +
                          std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Status
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth) {
            return fail("nesting too deep");
        }
        skipWs();
        if (pos_ >= text_.size()) {
            return fail("unexpected end of document");
        }
        switch (text_[pos_]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.type_ = JsonValue::Type::kString;
            return parseString(out.string_);
          case 't':
          case 'f':
            return parseKeyword(out);
          case 'n':
            out.type_ = JsonValue::Type::kNull;
            return expect("null");
          default:
            return parseNumber(out);
        }
    }

    Status
    expect(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word) {
            return fail("malformed literal");
        }
        pos_ += word.size();
        return Status::okStatus();
    }

    Status
    parseKeyword(JsonValue &out)
    {
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = text_[pos_] == 't';
        return expect(out.bool_ ? "true" : "false");
    }

    Status
    parseNumber(JsonValue &out)
    {
        size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) {
            return fail("expected a value");
        }
        std::string num(text_.substr(start, pos_ - start));
        char *end = nullptr;
        double v = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size()) {
            return fail("malformed number");
        }
        out.type_ = JsonValue::Type::kNumber;
        out.number_ = v;
        return Status::okStatus();
    }

    Status
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return Status::okStatus();
            }
            if (c == '\\') {
                Status s = parseEscape(out);
                if (!s.ok()) {
                    return s;
                }
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                return fail("raw control character in string");
            }
            out += c;
            ++pos_;
        }
        return fail("unterminated string");
    }

    Status
    parseEscape(std::string &out)
    {
        if (pos_ + 1 >= text_.size()) {
            return fail("truncated escape");
        }
        char c = text_[pos_ + 1];
        pos_ += 2;
        switch (c) {
          case '"': out += '"'; return Status::okStatus();
          case '\\': out += '\\'; return Status::okStatus();
          case '/': out += '/'; return Status::okStatus();
          case 'b': out += '\b'; return Status::okStatus();
          case 'f': out += '\f'; return Status::okStatus();
          case 'n': out += '\n'; return Status::okStatus();
          case 'r': out += '\r'; return Status::okStatus();
          case 't': out += '\t'; return Status::okStatus();
          case 'u': {
            uint32_t cp = 0;
            if (!parseHex4(cp)) {
                return fail("malformed \\u escape");
            }
            // Surrogate pair: a high surrogate must be chased by \uDC00-
            // \uDFFF; unpaired surrogates are replaced, not rejected.
            if (cp >= 0xd800 && cp <= 0xdbff &&
                text_.substr(pos_, 2) == "\\u") {
                pos_ += 2;
                uint32_t lo = 0;
                if (!parseHex4(lo)) {
                    return fail("malformed \\u escape");
                }
                if (lo >= 0xdc00 && lo <= 0xdfff) {
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                } else {
                    cp = 0xfffd;
                    appendUtf8(out, lo >= 0xd800 && lo <= 0xdfff ? 0xfffd
                                                                 : lo);
                }
            } else if (cp >= 0xd800 && cp <= 0xdfff) {
                cp = 0xfffd;
            }
            appendUtf8(out, cp);
            return Status::okStatus();
          }
          default:
            return fail("unknown escape");
        }
    }

    bool
    parseHex4(uint32_t &out)
    {
        if (pos_ + 4 > text_.size()) {
            return false;
        }
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_ + static_cast<size_t>(i)];
            out <<= 4;
            if (c >= '0' && c <= '9') {
                out |= static_cast<uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                out |= static_cast<uint32_t>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                out |= static_cast<uint32_t>(c - 'A' + 10);
            } else {
                return false;
            }
        }
        pos_ += 4;
        return true;
    }

    static void
    appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    Status
    parseArray(JsonValue &out, int depth)
    {
        ++pos_; // '['
        out.type_ = JsonValue::Type::kArray;
        skipWs();
        if (consume(']')) {
            return Status::okStatus();
        }
        for (;;) {
            JsonValue item;
            Status s = parseValue(item, depth + 1);
            if (!s.ok()) {
                return s;
            }
            out.items_.push_back(std::move(item));
            skipWs();
            if (consume(',')) {
                continue;
            }
            if (consume(']')) {
                return Status::okStatus();
            }
            return fail("expected ',' or ']'");
        }
    }

    Status
    parseObject(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        out.type_ = JsonValue::Type::kObject;
        skipWs();
        if (consume('}')) {
            return Status::okStatus();
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                return fail("expected a member key");
            }
            std::string key;
            Status s = parseString(key);
            if (!s.ok()) {
                return s;
            }
            skipWs();
            if (!consume(':')) {
                return fail("expected ':'");
            }
            JsonValue value;
            s = parseValue(value, depth + 1);
            if (!s.ok()) {
                return s;
            }
            out.members_.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (consume(',')) {
                continue;
            }
            if (consume('}')) {
                return Status::okStatus();
            }
            return fail("expected ',' or '}'");
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
};

Result<JsonValue>
JsonValue::parse(std::string_view text)
{
    return JsonParser(text).run();
}

} // namespace remora::util
