/**
 * @file
 * fault_probe: one seeded lossy-cluster workload over the reliable
 * wire, for scripts/check.sh --faults.
 *
 * Builds the paper's two-node testbed, arms the deterministic fault
 * injector on both link directions, and drives notified WRITEs plus
 * remote READs whose sizes straddle the raw-cell / AAL5-frame
 * boundary, so both encodings cross the lossy link. After quiescence
 * it audits end-to-end delivery — server memory bytes, notification
 * count, and read-back contents — and prints one machine-parsable
 * line:
 *
 *     seed=<N> digest=0x<16 hex> drops=<M> retransmits=<K> undelivered=<U>
 *
 * `undelivered` counts user-visible losses (a write missing from
 * memory, a missing notification, a failed or mismatched read); the
 * exit status is that count clamped to 1, with wire abandonment
 * (sendFailures) and wedged coroutines folded in, so any recovery
 * regression fails the gate directly. The digest lets the driver
 * confirm each seed ran a distinct, replayable schedule.
 */
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "mem/node.h"
#include "net/fault.h"
#include "net/network.h"
#include "rmem/engine.h"
#include "rmem/notification.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/panic.h"

namespace remora {
namespace {

/** READ @p expect.size() bytes at @p off and compare. */
sim::Task<void>
readBack(rmem::RmemEngine *eng, rmem::ImportedSegment seg,
         rmem::SegmentId scratch, uint32_t off, std::vector<uint8_t> expect,
         uint64_t *mismatches)
{
    rmem::ReadOutcome out = co_await eng->read(
        seg, off, scratch, 0, static_cast<uint16_t>(expect.size()));
    if (!out.status.ok() || out.data != expect) {
        ++*mismatches;
    }
}

int
run(uint64_t seed, double dropRate)
{
    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});
    mem::Node nodeA(sim, 1, "nodeA");
    mem::Node nodeB(sim, 2, "nodeB");
    rmem::RmemEngine engineA(nodeA);
    rmem::RmemEngine engineB(nodeB);
    network.addHost(1, nodeA.nic());
    network.addHost(2, nodeB.nic());
    network.wireDirect();
    engineA.wire().enableReliability();
    engineB.wire().enableReliability();

    mem::Process &server = nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(32768);
    auto seg = engineB.exportSegment(server, base, 32768, rmem::Rights::kAll,
                                     rmem::NotifyPolicy::kConditional,
                                     "probe.mem");
    REMORA_ASSERT(seg.ok());
    mem::Process &readerProc = nodeA.spawnProcess("reader");
    mem::Vaddr sbase = readerProc.space().allocRegion(4096);
    auto scratch = engineA.exportSegment(readerProc, sbase, 4096,
                                         rmem::Rights::kAll,
                                         rmem::NotifyPolicy::kNever,
                                         "probe.scratch");
    REMORA_ASSERT(scratch.ok());
    sim.run();

    net::FaultPlan plan;
    plan.seed = seed;
    plan.dropRate = dropRate;
    network.installFaults(plan);

    // Notified writes, sizes from one raw cell up to multi-cell frames.
    constexpr int kWrites = 24;
    std::vector<std::vector<uint8_t>> expected;
    std::vector<sim::Task<util::Status>> writes;
    for (int i = 0; i < kWrites; ++i) {
        std::vector<uint8_t> data(16 + (i * 53) % 480);
        for (size_t j = 0; j < data.size(); ++j) {
            data[j] = static_cast<uint8_t>(i * 17 + j);
        }
        expected.push_back(data);
        writes.push_back(engineA.write(
            seg.value(), static_cast<uint32_t>(i) * 1024, data,
            /*notify=*/true));
    }
    sim.run();

    // Read a sample back through the same lossy link.
    uint64_t readMismatches = 0;
    std::vector<sim::Task<void>> reads;
    for (int i = 0; i < kWrites; i += 3) {
        std::vector<uint8_t> expect(expected[i].begin(),
                                    expected[i].begin() + 16);
        reads.push_back(readBack(&engineA, seg.value(),
                                 scratch.value().descriptor,
                                 static_cast<uint32_t>(i) * 1024,
                                 std::move(expect), &readMismatches));
    }
    sim.run();

    uint64_t undelivered = readMismatches;
    for (auto &r : reads) {
        if (!r.done()) {
            ++undelivered; // read wedged: never completed
        }
    }
    for (int i = 0; i < kWrites; ++i) {
        if (!writes[i].done() || !writes[i].result().ok()) {
            ++undelivered;
            continue;
        }
        std::vector<uint8_t> got(expected[i].size());
        if (!server.space()
                 .read(base + static_cast<uint64_t>(i) * 1024, got)
                 .ok() ||
            got != expected[i]) {
            ++undelivered;
        }
    }
    auto *ch = engineB.channel(seg.value().descriptor);
    REMORA_ASSERT(ch != nullptr);
    rmem::Notification n;
    int notifications = 0;
    while (ch->tryNext(n)) {
        ++notifications;
    }
    if (notifications < kWrites) {
        undelivered += static_cast<uint64_t>(kWrites - notifications);
    }

    uint64_t abandoned =
        engineA.wire().sendFailures() + engineB.wire().sendFailures();
    if (abandoned > 0) {
        std::fprintf(stderr,
                     "fault_probe: wire abandoned %llu envelope(s)\n",
                     static_cast<unsigned long long>(abandoned));
    }
    if (sim.blockedTaskCount() > 0) {
        std::fprintf(stderr,
                     "fault_probe: %zu coroutine(s) blocked at quiescence\n",
                     sim.blockedTaskCount());
    }

    std::printf("seed=%llu digest=0x%016llx drops=%llu retransmits=%llu "
                "undelivered=%llu\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(sim.digest().value()),
                static_cast<unsigned long long>(network.totalFaultDrops()),
                static_cast<unsigned long long>(
                    engineA.wire().retransmits() +
                    engineB.wire().retransmits()),
                static_cast<unsigned long long>(undelivered));
    bool failed =
        undelivered > 0 || abandoned > 0 || sim.blockedTaskCount() > 0;
    return failed ? 1 : 0;
}

} // namespace
} // namespace remora

int
main(int argc, char **argv)
{
    uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 0ull;
    double dropRate = argc > 2 ? std::strtod(argv[2], nullptr) : 0.05;
    return remora::run(seed, dropRate);
}
