/**
 * @file
 * remora_mc: systematic schedule exploration over cluster workloads.
 *
 * Each registered workload is a deterministic thunk that builds a small
 * cluster on a fresh simulator and drives it to quiescence; the
 * ScheduleExplorer re-executes it once per same-instant tie-break
 * schedule (DFS with sleep-set reduction) and checks every terminal
 * state for deadlocks, lost wakeups, and blocked-forever coroutines.
 *
 * The clean registry (rpc, notify, sync, dfs-token) is the check.sh
 * --mc gate: bounded exploration must report zero findings. The seeded
 * workloads (deadlock, lost-wakeup) carry planted bugs and demonstrate
 * detection plus prefix shrinking:
 *
 *     remora_mc                      # explore the clean registry
 *     remora_mc deadlock lost-wakeup # demo the seeded bugs
 *     remora_mc --json sync          # machine-readable output
 *
 * Exit status is the total finding count clamped to 1 — except for
 * seeded workloads listed on the command line, whose findings are
 * expected and reported but do not fail the run.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dfs/token.h"
#include "mem/node.h"
#include "net/fault.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "rmem/engine.h"
#include "rmem/notification.h"
#include "rmem/sync.h"
#include "rpc/hybrid1.h"
#include "rpc/transport.h"
#include "sim/explorer.h"
#include "sim/task.h"
#include "util/panic.h"

namespace remora {
namespace {

// ----------------------------------------------------------------------
// Shared cluster scaffolding
// ----------------------------------------------------------------------

/** N switched nodes with engines, built fresh per explored schedule. */
struct World
{
    sim::Simulator &sim;
    net::Network network;
    std::vector<std::unique_ptr<mem::Node>> nodes;
    std::vector<std::unique_ptr<rmem::RmemEngine>> engines;

    World(sim::Simulator &s, uint32_t n) : sim(s), network(s, net::LinkParams{})
    {
        for (uint32_t i = 1; i <= n; ++i) {
            nodes.push_back(std::make_unique<mem::Node>(
                s, i, "node" + std::to_string(i)));
            engines.push_back(
                std::make_unique<rmem::RmemEngine>(*nodes.back()));
            network.addHost(i, nodes.back()->nic());
        }
        if (n == 2) {
            network.wireDirect();
        } else {
            network.wireSwitched();
        }
    }

    rmem::ImportedSegment
    exportOn(uint32_t nodeIdx, const std::string &name, uint32_t size = 4096,
             rmem::NotifyPolicy policy = rmem::NotifyPolicy::kNever)
    {
        mem::Process &p = nodes[nodeIdx]->spawnProcess(name);
        mem::Vaddr base = p.space().allocRegion(size);
        auto h = engines[nodeIdx]->exportSegment(p, base, size,
                                                 rmem::Rights::kAll, policy,
                                                 name);
        REMORA_ASSERT(h.ok());
        return h.value();
    }
};

// ----------------------------------------------------------------------
// Clean workloads (the gate: zero findings expected)
// ----------------------------------------------------------------------

/** One Hybrid-1 client's echo calls. */
sim::Task<void>
rpcCalls(rpc::Hybrid1Client *c, uint8_t tag)
{
    for (uint8_t i = 0; i < 2; ++i) {
        std::vector<uint8_t> args{tag, i};
        auto reply = co_await c->call(args);
        REMORA_ASSERT(reply.ok());
        REMORA_ASSERT(reply.value()[0] == tag);
    }
}

/** Hybrid-1 echo: two clients race their notified request writes. */
void
rpcWorkload(sim::Simulator &s)
{
    World w(s, 3);
    mem::Process &serverProc = w.nodes[0]->spawnProcess("rpc-server");
    rpc::Hybrid1Server server(*w.engines[0], serverProc);
    server.setHandler(
        [](net::NodeId,
           std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            co_return args;
        });
    server.start();
    mem::Process &p1 = w.nodes[1]->spawnProcess("rpc-client1");
    mem::Process &p2 = w.nodes[2]->spawnProcess("rpc-client2");
    rpc::Hybrid1Client c1(*w.engines[1], p1, server.requestSegmentHandle(),
                          server.allocSlot());
    rpc::Hybrid1Client c2(*w.engines[2], p2, server.requestSegmentHandle(),
                          server.allocSlot());
    auto t1 = rpcCalls(&c1, 0x11);
    auto t2 = rpcCalls(&c2, 0x22);
    s.run();
    REMORA_ASSERT(t1.done() && t2.done());
}

/** Consume @p want notifications off a channel. */
sim::Task<void>
notifyReader(rmem::NotificationChannel *ch, int want)
{
    for (int i = 0; i < want; ++i) {
        rmem::Notification n = co_await ch->next();
        REMORA_ASSERT(n.count == 3);
    }
}

/** Two racing notified writes consumed by a blocking channel reader. */
void
notifyWorkload(sim::Simulator &s)
{
    World w(s, 3);
    auto seg = w.exportOn(0, "mc.notify", 4096,
                          rmem::NotifyPolicy::kConditional);
    rmem::NotificationChannel *ch = w.engines[0]->channel(seg.descriptor);
    REMORA_ASSERT(ch != nullptr);
    auto reader = notifyReader(ch, 2);
    auto w1 = w.engines[1]->write(seg, 64, {1, 2, 3}, true);
    auto w2 = w.engines[2]->write(seg, 128, {4, 5, 6}, true);
    s.run();
    REMORA_ASSERT(reader.done());
    REMORA_ASSERT(w1.done() && w1.result().ok());
    REMORA_ASSERT(w2.done() && w2.result().ok());
}

/**
 * Two racing vectored writes, each carrying notify sub-ops that
 * coalesce behind one doorbell, against a blocking channel reader.
 * Every interleaving must deliver all four records (no lost wakeup
 * from the batched post) and ring exactly one doorbell per batch.
 */
void
vectorNotifyWorkload(sim::Simulator &s)
{
    World w(s, 3);
    auto seg = w.exportOn(0, "mc.vector", 4096,
                          rmem::NotifyPolicy::kConditional);
    rmem::NotificationChannel *ch = w.engines[0]->channel(seg.descriptor);
    REMORA_ASSERT(ch != nullptr);
    auto reader = notifyReader(ch, 4);
    auto makeBatch = [&seg](uint32_t base) {
        std::vector<rmem::BatchBuilder::Write> ops;
        ops.push_back({seg, base, {1, 2, 3}, true});
        ops.push_back({seg, base + 64, {4, 5, 6}, true});
        return ops;
    };
    auto w1 = w.engines[1]->writev(makeBatch(0));
    auto w2 = w.engines[2]->writev(makeBatch(256));
    s.run();
    REMORA_ASSERT(reader.done());
    REMORA_ASSERT(w1.done() && w1.result().ok());
    REMORA_ASSERT(w2.done() && w2.result().ok());
    REMORA_ASSERT(w.engines[0]->stats().vectorDoorbells.value() == 2);
    REMORA_ASSERT(w.engines[0]->stats().notificationsPosted.value() == 4);
}

/** Two nodes contending one remote spin-lock word. */
void
syncWorkload(sim::Simulator &s)
{
    World w(s, 2);
    auto page = w.exportOn(0, "mc.locks");
    auto scratch = w.exportOn(1, "mc.scratch");
    rmem::SpinLock la(*w.engines[1], page, 0, scratch.descriptor, 0, 0x201);
    rmem::SpinLock lb(*w.engines[1], page, 0, scratch.descriptor, 4, 0x202);
    auto hold = [](rmem::SpinLock *lock, sim::Simulator *sp) -> sim::Task<void> {
        auto a = co_await lock->acquire();
        REMORA_ASSERT(a.ok());
        co_await sim::delay(*sp, sim::usec(40));
        auto r = co_await lock->release();
        REMORA_ASSERT(r.ok());
    };
    auto w1 = hold(&la, &s);
    auto w2 = hold(&lb, &s);
    s.run();
    REMORA_ASSERT(w1.done() && w2.done());
}

/** Token coherence with a revocation (the rare control transfer). */
void
dfsTokenWorkload(sim::Simulator &s)
{
    World w(s, 3);
    mem::Process &serverProc = w.nodes[0]->spawnProcess("tok-server");
    dfs::TokenArea area(*w.engines[0], serverProc);
    mem::Process &p1 = w.nodes[1]->spawnProcess("tok-clerk1");
    mem::Process &p2 = w.nodes[2]->spawnProcess("tok-clerk2");
    dfs::TokenClient c1(*w.engines[1], p1, area.handle());
    dfs::TokenClient c2(*w.engines[2], p2, area.handle());
    auto useToken = [](dfs::TokenClient *c, sim::Simulator *sp,
                       sim::Duration dwell) -> sim::Task<void> {
        auto st = co_await c->acquire(42);
        REMORA_ASSERT(st.ok());
        c->beginUse(42);
        co_await sim::delay(*sp, dwell);
        c->endUse(42);
    };
    auto w1 = useToken(&c1, &s, sim::usec(80));
    auto w2 = useToken(&c2, &s, sim::usec(40));
    s.run();
    REMORA_ASSERT(w1.done() && w2.done());
}

/**
 * Notified writes across a dropping link: the reliable wire must
 * deliver every one exactly once and wake the reader under any
 * schedule, with retransmission timers racing delivery and acks.
 */
void
lossyWriteWorkload(sim::Simulator &s)
{
    World w(s, 2);
    w.engines[0]->wire().enableReliability();
    w.engines[1]->wire().enableReliability();
    auto seg = w.exportOn(0, "mc.lossy", 4096,
                          rmem::NotifyPolicy::kConditional);
    net::FaultPlan plan;
    plan.seed = 7;
    plan.dropRate = 0.25;
    w.network.installFaults(plan);
    rmem::NotificationChannel *ch = w.engines[0]->channel(seg.descriptor);
    REMORA_ASSERT(ch != nullptr);
    auto reader = notifyReader(ch, 3);
    auto w1 = w.engines[1]->write(seg, 0, {1, 2, 3}, true);
    auto w2 = w.engines[1]->write(seg, 64, {4, 5, 6}, true);
    auto w3 = w.engines[1]->write(seg, 128, {7, 8, 9}, true);
    s.run();
    REMORA_ASSERT(reader.done());
    REMORA_ASSERT(w1.done() && w1.result().ok());
    REMORA_ASSERT(w2.done() && w2.result().ok());
    REMORA_ASSERT(w3.done() && w3.result().ok());
    REMORA_ASSERT(w.engines[1]->wire().sendFailures() == 0);
}

/** One retried RPC call; the reply must echo the tag. */
sim::Task<void>
lossyRpcCall(rpc::RpcTransport *c, uint8_t tag)
{
    std::vector<uint8_t> args(1, tag);
    auto r = co_await c->call(1, 3, args, sim::msec(3), /*maxRetries=*/10);
    REMORA_ASSERT(r.ok());
    REMORA_ASSERT(r.value()[0] == tag);
}

/**
 * Retried RPC across a dropping link with wire reliability OFF: the
 * transport's at-most-once layer alone must recover — every call
 * completes, and the handler runs exactly once per logical call no
 * matter how timeouts, duplicates, and late replies interleave.
 */
void
lossyRpcWorkload(sim::Simulator &s)
{
    World w(s, 2);
    rpc::RpcTransport server(w.engines[0]->wire());
    rpc::RpcTransport client(w.engines[1]->wire());
    int handlerRuns = 0;
    server.registerProc(
        3, [&handlerRuns](net::NodeId, std::vector<uint8_t> args)
               -> sim::Task<std::vector<uint8_t>> {
            ++handlerRuns;
            co_return args;
        });
    net::FaultPlan plan;
    plan.seed = 11;
    plan.dropRate = 0.35;
    w.network.installFaults(plan);
    auto t1 = lossyRpcCall(&client, 0x51);
    auto t2 = lossyRpcCall(&client, 0x52);
    s.run();
    REMORA_ASSERT(t1.done() && t2.done());
    REMORA_ASSERT(handlerRuns == 2);
}

// ----------------------------------------------------------------------
// Seeded workloads (planted bugs the explorer must find)
// ----------------------------------------------------------------------

/** Acquire @p first, dwell, then acquire @p second. */
sim::Task<void>
lockOrderWorker(rmem::SpinLock *first, rmem::SpinLock *second,
                sim::Simulator *s)
{
    auto a = co_await first->acquire();
    REMORA_ASSERT(a.ok());
    co_await sim::delay(*s, sim::usec(200));
    // The planted cross-order deadlock remora-mc must rediscover.
    // NOLINTNEXTLINE(remora-lock-across-suspension)
    auto b = co_await second->acquire();
    REMORA_ASSERT(b.ok());
    auto rb = co_await second->release();
    REMORA_ASSERT(rb.ok());
    auto ra = co_await first->release();
    REMORA_ASSERT(ra.ok());
}

/** Cross-order acquisition of two lock words: a 2-party wait cycle. */
void
deadlockWorkload(sim::Simulator &s)
{
    World w(s, 2);
    auto page = w.exportOn(0, "mc.locks");
    auto scratch = w.exportOn(1, "mc.scratch");
    rmem::SpinLock l0a(*w.engines[1], page, 0, scratch.descriptor, 0, 0x101);
    rmem::SpinLock l64a(*w.engines[1], page, 64, scratch.descriptor, 0, 0x101);
    rmem::SpinLock l64b(*w.engines[1], page, 64, scratch.descriptor, 4, 0x102);
    rmem::SpinLock l0b(*w.engines[1], page, 0, scratch.descriptor, 4, 0x102);
    auto w1 = lockOrderWorker(&l0a, &l64a, &s);
    auto w2 = lockOrderWorker(&l64b, &l0b, &s);
    s.run();
}

/** A post and a single poll race: one order strands the token. */
void
lostWakeupWorkload(sim::Simulator &s)
{
    mem::Node node(s, 1, "node");
    rmem::CostModel costs;
    rmem::NotificationChannel ch(node.cpu(), costs);
    ch.setHangLabel("mc.token");
    s.schedule(sim::usec(10), [&ch] {
        rmem::Notification n;
        n.srcNode = 2;
        ch.post(n);
    });
    s.schedule(sim::usec(10), [&ch] {
        rmem::Notification out;
        (void)ch.tryNext(out);
    });
    s.run();
}

// ----------------------------------------------------------------------
// Registry and driver
// ----------------------------------------------------------------------

struct WorkloadEntry
{
    const char *name;
    sim::ScheduleExplorer::Workload fn;
    bool seeded; ///< Carries a planted bug; findings are the point.
};

const std::vector<WorkloadEntry> &
registry()
{
    static const std::vector<WorkloadEntry> r = {
        {"rpc", rpcWorkload, false},
        {"notify", notifyWorkload, false},
        {"vector-notify", vectorNotifyWorkload, false},
        {"sync", syncWorkload, false},
        {"dfs-token", dfsTokenWorkload, false},
        {"lossy-write", lossyWriteWorkload, false},
        {"lossy-rpc", lossyRpcWorkload, false},
        {"deadlock", deadlockWorkload, true},
        {"lost-wakeup", lostWakeupWorkload, true},
    };
    return r;
}

std::string
choiceList(const std::vector<uint32_t> &v)
{
    std::string out = "[";
    for (size_t i = 0; i < v.size(); ++i) {
        if (i != 0) {
            out += ",";
        }
        out += std::to_string(v[i]);
    }
    return out + "]";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    return out;
}

struct Options
{
    sim::ExplorerOptions explorer;
    bool json = false;
    bool metrics = false;
    std::vector<std::string> workloads;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--list] [--json] [--metrics] [--max-schedules N]\n"
        "          [--step-budget N] [--no-reduction] [--no-shrink]\n"
        "          [workload...]\n"
        "default workloads: every clean registry entry\n",
        argv0);
    return 2;
}

int
run(const Options &opts)
{
    // Explorers are kept alive to the end: the metric registry borrows
    // their counters ("mc.<workload>.*").
    std::vector<std::unique_ptr<sim::ScheduleExplorer>> explorers;
    auto &metrics = obs::MetricRegistry::global();
    uint64_t unexpected = 0;
    uint64_t totalSchedules = 0;
    uint64_t totalFindings = 0;
    std::string jsonOut = "{\"workloads\":[";
    bool firstJson = true;

    for (const std::string &name : opts.workloads) {
        const WorkloadEntry *entry = nullptr;
        for (const WorkloadEntry &e : registry()) {
            if (name == e.name) {
                entry = &e;
            }
        }
        if (entry == nullptr) {
            std::fprintf(stderr, "remora_mc: unknown workload '%s'\n",
                         name.c_str());
            return 2;
        }
        explorers.push_back(std::make_unique<sim::ScheduleExplorer>(
            entry->fn, opts.explorer));
        sim::ScheduleExplorer &ex = *explorers.back();
        sim::ExploreResult res = ex.explore();

        std::string prefix = "mc." + name + ".";
        metrics.add(prefix + "schedules", ex.schedulesRun());
        metrics.add(prefix + "decisions", ex.decisionsHit());
        metrics.add(prefix + "findings", ex.findingsFound());
        metrics.add(prefix + "sleep_skips", ex.sleepSkips());
        metrics.add(prefix + "shrink_runs", ex.shrinkRuns());

        totalSchedules += res.schedules;
        totalFindings += res.findings.size();
        if (!entry->seeded) {
            unexpected += res.findings.size();
        }

        if (opts.json) {
            if (!firstJson) {
                jsonOut += ",";
            }
            firstJson = false;
            char buf[256];
            std::snprintf(buf, sizeof buf,
                          "{\"name\":\"%s\",\"schedules\":%llu,"
                          "\"decisions\":%llu,\"sleep_skips\":%llu,"
                          "\"max_depth\":%llu,\"exhausted\":%s,"
                          "\"capped\":%s,\"digest\":\"0x%016llx\","
                          "\"findings\":[",
                          name.c_str(),
                          static_cast<unsigned long long>(res.schedules),
                          static_cast<unsigned long long>(res.decisions),
                          static_cast<unsigned long long>(res.sleepSkips),
                          static_cast<unsigned long long>(res.maxDepth),
                          res.exhausted ? "true" : "false",
                          res.capped ? "true" : "false",
                          static_cast<unsigned long long>(res.firstDigest));
            jsonOut += buf;
            for (size_t i = 0; i < res.findings.size(); ++i) {
                const sim::ExplorerFinding &f = res.findings[i];
                if (i != 0) {
                    jsonOut += ",";
                }
                jsonOut += "{\"kind\":\"";
                jsonOut += sim::HangReport::kindName(f.report.kind);
                jsonOut += "\",\"schedule\":" + std::to_string(f.schedule);
                jsonOut +=
                    ",\"detail\":\"" + jsonEscape(f.report.detail) + "\"";
                jsonOut += ",\"parties\":[";
                for (size_t p = 0; p < f.report.parties.size(); ++p) {
                    if (p != 0) {
                        jsonOut += ",";
                    }
                    jsonOut +=
                        "\"" + jsonEscape(f.report.parties[p]) + "\"";
                }
                jsonOut += "],\"choices\":" + choiceList(f.choices);
                jsonOut += ",\"shrunk\":" + choiceList(f.shrunk) + "}";
            }
            jsonOut += "]}";
        } else {
            std::printf("workload=%s schedules=%llu decisions=%llu "
                        "prunes=%llu findings=%zu digest=0x%016llx%s%s\n",
                        name.c_str(),
                        static_cast<unsigned long long>(res.schedules),
                        static_cast<unsigned long long>(res.decisions),
                        static_cast<unsigned long long>(res.sleepSkips),
                        res.findings.size(),
                        static_cast<unsigned long long>(res.firstDigest),
                        res.capped ? " capped" : "",
                        res.exhausted ? " exhausted" : "");
            for (const sim::ExplorerFinding &f : res.findings) {
                std::printf("finding workload=%s schedule=%llu "
                            "shrunk=%s of %zu choices\n",
                            name.c_str(),
                            static_cast<unsigned long long>(f.schedule),
                            choiceList(f.shrunk).c_str(), f.choices.size());
                std::printf("%s", f.report.format().c_str());
            }
        }
    }

    if (opts.json) {
        jsonOut += "],\"total_schedules\":" + std::to_string(totalSchedules);
        jsonOut += ",\"total_findings\":" + std::to_string(totalFindings);
        jsonOut += ",\"unexpected_findings\":" + std::to_string(unexpected);
        jsonOut += "}";
        std::printf("%s\n", jsonOut.c_str());
    } else {
        std::printf("mc workloads=%zu schedules=%llu findings=%llu "
                    "unexpected=%llu\n",
                    opts.workloads.size(),
                    static_cast<unsigned long long>(totalSchedules),
                    static_cast<unsigned long long>(totalFindings),
                    static_cast<unsigned long long>(unexpected));
    }
    if (opts.metrics) {
        std::printf("%s", metrics.dump().c_str());
    }
    return unexpected == 0 ? 0 : 1;
}

} // namespace
} // namespace remora

int
main(int argc, char **argv)
{
    remora::Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto numArg = [&](uint64_t &out) {
            if (i + 1 >= argc) {
                return false;
            }
            out = std::strtoull(argv[++i], nullptr, 0);
            return true;
        };
        if (arg == "--list") {
            for (const auto &e : remora::registry()) {
                std::printf("%s%s\n", e.name, e.seeded ? " (seeded bug)" : "");
            }
            return 0;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--metrics") {
            opts.metrics = true;
        } else if (arg == "--no-reduction") {
            opts.explorer.reduction = false;
        } else if (arg == "--no-shrink") {
            opts.explorer.shrink = false;
        } else if (arg == "--max-schedules") {
            if (!numArg(opts.explorer.maxSchedules)) {
                return remora::usage(argv[0]);
            }
        } else if (arg == "--step-budget") {
            if (!numArg(opts.explorer.stepBudget)) {
                return remora::usage(argv[0]);
            }
        } else if (!arg.empty() && arg[0] == '-') {
            return remora::usage(argv[0]);
        } else {
            opts.workloads.push_back(arg);
        }
    }
    if (opts.workloads.empty()) {
        for (const auto &e : remora::registry()) {
            if (!e.seeded) {
                opts.workloads.push_back(e.name);
            }
        }
    }
    return remora::run(opts);
}
