#include "flow.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "source_model.h"

namespace remora::lint {

namespace {

// ----------------------------------------------------------------------
// Token utilities
// ----------------------------------------------------------------------

using Toks = std::vector<Token>;

bool
isKeyword(const std::string &t)
{
    static const std::set<std::string> kw = {
        "if",       "for",     "while",    "switch",   "catch",
        "return",   "co_return", "co_await", "co_yield", "sizeof",
        "alignof",  "decltype", "new",      "delete",   "throw",
        "static_assert", "alignas", "noexcept", "else", "do",
    };
    return kw.count(t) != 0;
}

/** Index of the token matching the opener at @p open ((), {}, []). */
size_t
matchTok(const Toks &toks, size_t open, const char *o, const char *c)
{
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
        if (toks[i].is(o)) {
            ++depth;
        } else if (toks[i].is(c)) {
            if (--depth == 0) {
                return i;
            }
        }
    }
    return toks.size();
}

/** True when '[' at @p idx starts a lambda introducer (vs. subscript). */
bool
lambdaIntroAt(const Toks &toks, size_t idx)
{
    if (!toks[idx].is("[")) {
        return false;
    }
    if (idx == 0) {
        return true;
    }
    const Token &p = toks[idx - 1];
    if (p.is("[")) {
        return false; // second bracket of an [[attribute]]
    }
    if (p.ident()) {
        return isKeyword(p.text); // `return [..]`, `co_await [..]`…
    }
    return !(p.is(")") || p.is("]"));
}

/**
 * If a lambda introducer starts at @p idx, return the index of its
 * body's '{' (and the body's '}' via @p rbraceOut); otherwise npos.
 * Shape: `[caps]` `(params)`? specifiers* (`-> type-tokens`)? `{`.
 */
size_t
lambdaBodyAt(const Toks &toks, size_t idx, size_t *rbraceOut)
{
    if (!lambdaIntroAt(toks, idx)) {
        return std::string::npos;
    }
    size_t close = matchTok(toks, idx, "[", "]");
    if (close >= toks.size()) {
        return std::string::npos;
    }
    size_t j = close + 1;
    if (j < toks.size() && toks[j].is("(")) {
        j = matchTok(toks, j, "(", ")");
        if (j >= toks.size()) {
            return std::string::npos;
        }
        ++j;
    }
    // Specifiers and an optional trailing return type. Give up at any
    // token that cannot belong to either (then it was an attribute or
    // a plain subscript after all).
    bool sawArrow = false;
    while (j < toks.size() && !toks[j].is("{")) {
        const Token &t = toks[j];
        if (t.is("->")) {
            sawArrow = true;
            ++j;
        } else if (t.ident() || t.is("::") || t.is("&") || t.is("*")) {
            ++j;
        } else if (sawArrow && (t.is("<") || t.is(">") || t.is(">>") ||
                                t.is("(") || t.is(")") || t.is(","))) {
            ++j; // template args / function-type pieces of the return
        } else {
            return std::string::npos;
        }
    }
    if (j >= toks.size()) {
        return std::string::npos;
    }
    size_t rb = matchTok(toks, j, "{", "}");
    if (rb >= toks.size()) {
        return std::string::npos;
    }
    if (rbraceOut != nullptr) {
        *rbraceOut = rb;
    }
    return j;
}

/** Concatenated text of [lo, hi), single-space separated idents. */
std::string
spanText(const Toks &toks, size_t lo, size_t hi)
{
    std::string out;
    for (size_t i = lo; i < hi && i < toks.size(); ++i) {
        if (!out.empty() && toks[i].ident() && isIdentChar(out.back())) {
            out += ' ';
        }
        out += toks[i].text;
    }
    return out;
}

// ----------------------------------------------------------------------
// Function extraction
// ----------------------------------------------------------------------

struct FnRange
{
    std::string name;
    size_t lbrace; // '{'
    size_t rbrace; // matching '}'
};

/**
 * Scan for function definitions: `name ( params ) [specifiers |
 * -> type | : init-list] {`. Bodies are skipped once found, so only
 * outermost definitions (including class-inline methods) are returned;
 * lambdas inside them become nested analysis units later.
 */
std::vector<FnRange>
extractFunctions(const Toks &toks)
{
    std::vector<FnRange> fns;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].ident() || isKeyword(toks[i].text) ||
            i + 1 >= toks.size() || !toks[i + 1].is("(")) {
            continue;
        }
        if (i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->"))) {
            continue; // member call, not a definition
        }
        size_t close = matchTok(toks, i + 1, "(", ")");
        if (close >= toks.size()) {
            continue;
        }
        size_t j = close + 1;
        // Specifiers / trailing return type.
        bool bad = false;
        while (j < toks.size() && !toks[j].is("{") && !toks[j].is(":")) {
            const Token &t = toks[j];
            if (t.ident() &&
                (t.is("const") || t.is("noexcept") || t.is("override") ||
                 t.is("final") || t.is("mutable") || t.is("try"))) {
                ++j;
            } else if (t.is("->")) {
                // Skip the trailing type up to '{' or something odd.
                ++j;
                while (j < toks.size() &&
                       (toks[j].ident() || toks[j].is("::") ||
                        toks[j].is("<") || toks[j].is(">") ||
                        toks[j].is(">>") || toks[j].is("&") ||
                        toks[j].is("*"))) {
                    ++j;
                }
            } else if (t.is("(")) {
                // noexcept(...) etc.
                j = matchTok(toks, j, "(", ")");
                if (j >= toks.size()) {
                    bad = true;
                    break;
                }
                ++j;
            } else {
                bad = true;
                break;
            }
        }
        if (bad || j >= toks.size()) {
            continue;
        }
        if (toks[j].is(":")) {
            // Constructor init list: `: entry (args|{args}) , ...`.
            ++j;
            while (j < toks.size()) {
                while (j < toks.size() &&
                       (toks[j].ident() || toks[j].is("::"))) {
                    ++j;
                }
                if (j < toks.size() && toks[j].is("<")) {
                    j = matchTok(toks, j, "<", ">");
                    j = j < toks.size() ? j + 1 : j;
                }
                if (j >= toks.size()) {
                    break;
                }
                if (toks[j].is("(")) {
                    j = matchTok(toks, j, "(", ")") + 1;
                } else if (toks[j].is("{")) {
                    j = matchTok(toks, j, "{", "}") + 1;
                } else {
                    break;
                }
                if (j < toks.size() && toks[j].is(",")) {
                    ++j;
                    continue;
                }
                break;
            }
        }
        if (j >= toks.size() || !toks[j].is("{")) {
            continue;
        }
        size_t rb = matchTok(toks, j, "{", "}");
        if (rb >= toks.size()) {
            continue;
        }
        fns.push_back(FnRange{toks[i].text, j, rb});
        i = rb; // don't re-find constructs inside the body
    }
    return fns;
}

// ----------------------------------------------------------------------
// Statement tree
// ----------------------------------------------------------------------

struct Stmt
{
    enum class K
    {
        kBlock,    // kids
        kIf,       // cond + kids[0]=then, kids[1]=else (optional)
        kLoop,     // cond (header) + kids[0]=body; while/for
        kDoWhile,  // kids[0]=body + cond
        kSwitch,   // cond + kids[0]=body block (with kCase markers)
        kCase,     // case/default label inside a switch body
        kReturn,   // tokens of `return|co_return expr`
        kBreak,
        kContinue,
        kSimple,   // tokens up to and incl. ';'
    };
    K k = K::kSimple;
    size_t lo = 0, hi = 0;         // kSimple / kReturn token range
    size_t condLo = 0, condHi = 0; // header range for if/loops/switch
    bool rangeFor = false;         // kLoop from `for (decl : range)`
    std::vector<Stmt> kids;
};

Stmt parseOne(const Toks &toks, size_t &pos, size_t hi);

std::vector<Stmt>
parseStmts(const Toks &toks, size_t pos, size_t hi)
{
    std::vector<Stmt> out;
    while (pos < hi) {
        out.push_back(parseOne(toks, pos, hi));
    }
    return out;
}

/** Advance past one simple statement: to ';' at bracket depth 0. */
size_t
simpleEnd(const Toks &toks, size_t pos, size_t hi)
{
    int depth = 0;
    for (size_t i = pos; i < hi; ++i) {
        if (toks[i].is("(") || toks[i].is("{") || toks[i].is("[")) {
            ++depth;
        } else if (toks[i].is(")") || toks[i].is("}") || toks[i].is("]")) {
            --depth;
        } else if (toks[i].is(";") && depth <= 0) {
            return i + 1;
        }
    }
    return hi;
}

Stmt
parseOne(const Toks &toks, size_t &pos, size_t hi)
{
    Stmt s;
    const Token &t = toks[pos];
    auto condOf = [&](size_t kwEnd) {
        // kwEnd: first token after the keyword; expects '('.
        size_t open = kwEnd;
        while (open < hi && !toks[open].is("(")) {
            ++open; // `if constexpr`, `while (…` with attribute, …
        }
        size_t close = matchTok(toks, open, "(", ")");
        s.condLo = open + 1;
        s.condHi = close < hi ? close : hi;
        return close < hi ? close + 1 : hi;
    };

    if (t.is("{")) {
        size_t rb = matchTok(toks, pos, "{", "}");
        rb = rb < hi ? rb : hi;
        s.k = Stmt::K::kBlock;
        s.kids = parseStmts(toks, pos + 1, rb);
        pos = rb + 1;
        return s;
    }
    if (t.ident() && t.is("if")) {
        s.k = Stmt::K::kIf;
        size_t body = condOf(pos + 1);
        pos = body;
        s.kids.push_back(parseOne(toks, pos, hi));
        if (pos < hi && toks[pos].is("else")) {
            ++pos;
            s.kids.push_back(parseOne(toks, pos, hi));
        }
        return s;
    }
    if (t.ident() && (t.is("while") || t.is("for"))) {
        s.k = Stmt::K::kLoop;
        size_t body = condOf(pos + 1);
        if (t.is("for")) {
            // Range-for: a top-level ':' in the header.
            int d = 0;
            for (size_t i = s.condLo; i < s.condHi; ++i) {
                if (toks[i].is("(") || toks[i].is("[") || toks[i].is("{")) {
                    ++d;
                } else if (toks[i].is(")") || toks[i].is("]") ||
                           toks[i].is("}")) {
                    --d;
                } else if (toks[i].is(":") && d == 0) {
                    s.rangeFor = true;
                    break;
                } else if (toks[i].is(";") && d == 0) {
                    break; // classic for
                }
            }
        }
        pos = body;
        s.kids.push_back(parseOne(toks, pos, hi));
        return s;
    }
    if (t.ident() && t.is("do")) {
        s.k = Stmt::K::kDoWhile;
        ++pos;
        s.kids.push_back(parseOne(toks, pos, hi));
        if (pos < hi && toks[pos].is("while")) {
            pos = condOf(pos + 1);
            if (pos < hi && toks[pos].is(";")) {
                ++pos;
            }
        }
        return s;
    }
    if (t.ident() && t.is("switch")) {
        s.k = Stmt::K::kSwitch;
        size_t body = condOf(pos + 1);
        pos = body;
        s.kids.push_back(parseOne(toks, pos, hi));
        return s;
    }
    if (t.ident() && (t.is("case") || t.is("default"))) {
        s.k = Stmt::K::kCase;
        // Skip to the label's ':' (not '::').
        while (pos < hi && !toks[pos].is(":")) {
            ++pos;
        }
        pos = pos < hi ? pos + 1 : hi;
        return s;
    }
    if (t.ident() && (t.is("return") || t.is("co_return"))) {
        s.k = Stmt::K::kReturn;
        s.lo = pos;
        s.hi = simpleEnd(toks, pos, hi);
        pos = s.hi;
        return s;
    }
    if (t.ident() && (t.is("break") || t.is("continue"))) {
        s.k = t.is("break") ? Stmt::K::kBreak : Stmt::K::kContinue;
        pos = simpleEnd(toks, pos, hi);
        return s;
    }
    if (t.ident() && t.is("try")) {
        // try-block inline; each catch is a may-execute branch.
        ++pos;
        Stmt block = parseOne(toks, pos, hi);
        s.k = Stmt::K::kBlock;
        s.kids.push_back(std::move(block));
        while (pos < hi && toks[pos].is("catch")) {
            size_t body = condOf(pos + 1);
            pos = body;
            Stmt branch;
            branch.k = Stmt::K::kIf;
            branch.kids.push_back(parseOne(toks, pos, hi));
            s.kids.push_back(std::move(branch));
        }
        return s;
    }
    if (t.is(";")) {
        s.k = Stmt::K::kSimple;
        s.lo = s.hi = pos;
        ++pos;
        return s;
    }
    s.k = Stmt::K::kSimple;
    s.lo = pos;
    s.hi = simpleEnd(toks, pos, hi);
    pos = s.hi;
    return s;
}

// ----------------------------------------------------------------------
// Events
// ----------------------------------------------------------------------

struct Ev
{
    enum class K
    {
        kSuspend,   // co_await; spinId non-empty when awaiting acquire()
        kAcquire,   // id held from here (spin lock / beginUse / try)
        kRelease,   // id released
        kGuard,     // host-thread guard declared (id = var name)
        kGuardKill, // guard scope ended
        kBind,      // borrow (re)bound: id = var
        kKill,      // borrow killed (reassigned to non-borrow)
        kUse,       // borrowed var used
    };
    K k;
    std::string id;
    int line = 0;
    /** kSuspend: identity being acquired by the awaited acquire(). */
    std::string spinId;
    /** kAcquire: 0 = awaited spin acquire, 1 = beginUse busy-mark. */
    int lockKind = 0;
};

/** Callees whose member-call result borrows from the callee chain. */
bool
isViewCallee(const std::string &t)
{
    static const std::set<std::string> v = {
        "data", "c_str", "bytes", "viewBytes", "frame",  "payload",
        "view", "span",  "find",  "begin",     "cbegin", "end",
        "at",   "front", "back",
    };
    return v.count(t) != 0;
}

bool
isVecCallee(const std::string &t)
{
    return t == "readv" || t == "writev" || t == "casv" ||
           t == "issueVector";
}

struct VecBind
{
    std::string var;
    int line = 0;
    std::string callee;
};

/** Per-function context threaded through eventization. */
struct FnCtx
{
    const Toks *toks = nullptr;
    /** Borrow vars currently known external (from the bind pre-pass). */
    std::set<std::string> tracked;
    /** Bound vectored-op outcomes (global per-function post-pass). */
    std::vector<VecBind> vecBinds;
    /** vars with a `.results` / `.status` / `.ok` access. */
    std::set<std::string> vecResultsSeen;
    std::set<std::string> vecStatusSeen;
    /** Discarded awaited vector ops: line -> callee. */
    std::vector<std::pair<int, std::string>> vecDiscards;
    /** Nested lambda bodies to analyze separately: [lbrace+1, rbrace). */
    std::vector<std::pair<size_t, size_t>> lambdas;
    bool collectLambdas = false;
};

/**
 * Chain externality: borrowed-from state reachable by other coroutines.
 * Roots: `this`, idents with the `_` member suffix anywhere in the
 * chain, or a var already tracked as an external borrow (transitivity:
 * `it = peers_.find(..)` then `peer = it->second`).
 */
bool
chainExternal(const Toks &toks, size_t lo, size_t hi, const FnCtx &ctx)
{
    for (size_t i = lo; i < hi; ++i) {
        const Token &t = toks[i];
        if (!t.ident()) {
            continue;
        }
        if (t.is("this") || (!t.text.empty() && t.text.back() == '_') ||
            ctx.tracked.count(t.text) != 0) {
            return true;
        }
    }
    return false;
}

/**
 * RHS borrow classification for [lo, hi). Returns true when the
 * initializer expression yields a pointer/iterator/reference into
 * external state:
 *  (a) a view/iterator member call (`.find(`, `.data(`, …) whose chain
 *      prefix is external — any LHS (the result itself points in);
 *  (b) a subscript on an external chain — only when @p refLike (a copy
 *      of the element is safe);
 *  (c) a plain chain rooted at an already-tracked borrow var — only
 *      when @p refLike (`const Peer &peer = it->second`).
 */
bool
rhsBorrows(const Toks &toks, size_t lo, size_t hi, bool refLike,
           const FnCtx &ctx)
{
    size_t start = lo;
    while (start < hi && (toks[start].is("&") || toks[start].is("*") ||
                          toks[start].is("("))) {
        ++start; // address-of / deref / parens change depth, not target
    }
    int depth = 0;
    for (size_t i = start; i < hi; ++i) {
        const Token &t = toks[i];
        if (t.is("(") || t.is("[") || t.is("{")) {
            // (a) view call?
            if (t.is("(") && i > start && toks[i - 1].ident() &&
                isViewCallee(toks[i - 1].text) && i >= 2 &&
                (toks[i - 2].is(".") || toks[i - 2].is("->")) &&
                depth == 0) {
                if (chainExternal(toks, start, i - 1, ctx)) {
                    return true;
                }
            }
            // (b) subscript on the chain so far?
            if (t.is("[") && depth == 0 && refLike && i > start &&
                (toks[i - 1].ident() || toks[i - 1].is(")")) &&
                chainExternal(toks, start, i, ctx)) {
                return true;
            }
            ++depth;
        } else if (t.is(")") || t.is("]") || t.is("}")) {
            --depth;
        }
    }
    // (c) pure chain rooted at a tracked var.
    if (refLike && start < hi && toks[start].ident() &&
        ctx.tracked.count(toks[start].text) != 0) {
        return true;
    }
    return false;
}

/**
 * Declaration shape in [lo, hi): `type-tokens name = init;` or a
 * range-for header `type-tokens name : range`. Returns the index of
 * the name token and the init range, or npos when not a declaration
 * with initializer.
 */
struct DeclShape
{
    size_t nameIdx = std::string::npos;
    size_t rhsLo = 0, rhsHi = 0;
    bool refLike = false;   // type mentions & * string_view span
    bool isDecl = false;    // ≥2 LHS tokens (vs. plain `x = …`)
};

DeclShape
declShapeIn(const Toks &toks, size_t lo, size_t hi, bool rangeFor)
{
    DeclShape d;
    int depth = 0;
    size_t split = std::string::npos;
    for (size_t i = lo; i < hi; ++i) {
        const Token &t = toks[i];
        if (t.is("(") || t.is("[") || t.is("{")) {
            ++depth;
        } else if (t.is(")") || t.is("]") || t.is("}")) {
            --depth;
        } else if (depth == 0 && !rangeFor && t.is("=") &&
                   (i + 1 >= hi || !toks[i + 1].is("=")) &&
                   (i == lo ||
                    !(toks[i - 1].is("=") || toks[i - 1].is("!") ||
                      toks[i - 1].is("<") || toks[i - 1].is(">") ||
                      toks[i - 1].is("+") || toks[i - 1].is("-") ||
                      toks[i - 1].is("*") || toks[i - 1].is("/") ||
                      toks[i - 1].is("%") || toks[i - 1].is("&") ||
                      toks[i - 1].is("|") || toks[i - 1].is("^")))) {
            split = i;
            break;
        } else if (depth == 0 && rangeFor && t.is(":")) {
            split = i;
            break;
        }
    }
    if (split == std::string::npos || split == lo || split + 1 >= hi) {
        return d;
    }
    if (!toks[split - 1].ident() || isKeyword(toks[split - 1].text)) {
        return d;
    }
    d.nameIdx = split - 1;
    d.rhsLo = split + 1;
    d.rhsHi = hi;
    // LHS classification: declaration when the name follows type
    // tokens; `x = …` (one LHS token) and `x.y = …` chains are not.
    size_t lhsCount = split - lo;
    if (lhsCount >= 2) {
        const Token &prev = toks[split - 2];
        d.isDecl = prev.ident() || prev.is("*") || prev.is("&") ||
                   prev.is(">") || prev.is(">>") || prev.is("&&");
        if (prev.is(".") || prev.is("->")) {
            d.isDecl = false;
        }
    }
    for (size_t i = lo; i < split - 1; ++i) {
        if (toks[i].is("&") || toks[i].is("*") || toks[i].is("&&") ||
            toks[i].is("string_view") || toks[i].is("span") ||
            toks[i].is("ConstSpan")) {
            d.refLike = true;
        }
    }
    return d;
}

/**
 * Eventize one statement-level token range. Nested lambda bodies are
 * recorded (for separate analysis) and skipped. Two modes share the
 * walk: the bind pre-pass (emit == nullptr) only grows ctx.tracked /
 * ctx.vecBinds; the emit pass appends ordered events.
 */
void
scanRange(FnCtx &ctx, size_t lo, size_t hi, bool rangeFor,
          std::vector<Ev> *emit)
{
    const Toks &toks = *ctx.toks;
    DeclShape decl = declShapeIn(toks, lo, hi, rangeFor);
    bool declBorrows = false;
    bool declIsVec = false;
    std::string declVar;
    if (decl.nameIdx != std::string::npos) {
        declVar = toks[decl.nameIdx].text;
        bool refLike = decl.refLike;
        if (decl.isDecl || rangeFor ||
            ctx.tracked.count(declVar) != 0) {
            declBorrows =
                rhsBorrows(toks, decl.rhsLo, decl.rhsHi,
                           refLike || rangeFor, ctx);
        }
        // Vectored-op bind: `var = co_await …readv(…)`.
        for (size_t i = decl.rhsLo; i + 2 < decl.rhsHi; ++i) {
            if (toks[i].ident() && isVecCallee(toks[i].text) &&
                toks[i + 1].is("(")) {
                bool awaited = false;
                for (size_t q = decl.rhsLo; q < i; ++q) {
                    if (toks[q].is("co_await")) {
                        awaited = true;
                    }
                }
                if (awaited) {
                    declIsVec = true;
                    if (emit == nullptr) {
                        ctx.vecBinds.push_back(
                            VecBind{declVar, toks[i].line, toks[i].text});
                    }
                }
            }
        }
        if (declBorrows && emit == nullptr) {
            ctx.tracked.insert(declVar);
        }
    }

    // Discarded awaited vector op: statement starts with co_await and
    // has no binding.
    if (emit == nullptr && decl.nameIdx == std::string::npos && lo < hi &&
        toks[lo].is("co_await")) {
        for (size_t i = lo; i + 1 < hi; ++i) {
            if (toks[i].ident() && isVecCallee(toks[i].text) &&
                toks[i + 1].is("(")) {
                ctx.vecDiscards.emplace_back(toks[i].line, toks[i].text);
                break;
            }
        }
    }

    // `co_await` suspends after its operand is evaluated, so the
    // suspend event is deferred to the operand's last token.
    std::map<size_t, Ev> pendingSusp;

    for (size_t i = lo; i < hi; ++i) {
        const Token &t = toks[i];

        // Nested lambda: separate analysis unit; skip its body.
        size_t rb = 0;
        size_t lb = lambdaBodyAt(toks, i, &rb);
        if (lb != std::string::npos && rb < hi) {
            if (emit == nullptr && ctx.collectLambdas) {
                ctx.lambdas.emplace_back(lb + 1, rb);
            }
            i = rb;
            continue;
        }

        if (t.is("co_await")) {
            // Find the awaited member call (if any) to classify it.
            Ev susp{Ev::K::kSuspend, "", t.line, "", 0};
            size_t at = i; // emit right here unless a call is found
            for (size_t q = i + 1; q < hi; ++q) {
                if (toks[q].is(";") || toks[q].is("co_await")) {
                    break;
                }
                if (toks[q].ident() && q + 1 < hi && toks[q + 1].is("(") &&
                    !(toks[q - 1].is(".") || toks[q - 1].is("->"))) {
                    // Free-function await (sim::delay(…), helper(…)):
                    // suspend after the argument list is evaluated.
                    at = std::min(matchTok(toks, q + 1, "(", ")"), hi - 1);
                    pendingSusp[at] = susp;
                    break;
                }
                if (toks[q].ident() && q + 1 < hi && toks[q + 1].is("(") &&
                    q > i + 1 &&
                    (toks[q - 1].is(".") || toks[q - 1].is("->"))) {
                    size_t close = matchTok(toks, q + 1, "(", ")");
                    std::string chain = spanText(toks, i + 1, q - 1);
                    std::string args =
                        spanText(toks, q + 2, std::min(close, hi));
                    std::string id = chain + "|" + args;
                    at = std::min(close, hi - 1);
                    if (toks[q].is("acquire")) {
                        susp.spinId = id;
                        pendingSusp[at] = susp;
                    } else if (toks[q].is("tryAcquire")) {
                        pendingSusp[at] = susp;
                        pendingSusp[at].id = id;
                        pendingSusp[at].lockKind = 2; // try marker
                    } else if (toks[q].is("release")) {
                        pendingSusp[at] = susp;
                        pendingSusp[at].id = id;
                        pendingSusp[at].lockKind = 3; // release marker
                    } else {
                        pendingSusp[at] = susp;
                    }
                    break;
                }
            }
            if (pendingSusp.count(at) == 0) {
                pendingSusp[at] = susp; // plain `co_await expr`
            }
            if (at == i && emit != nullptr) {
                // No operand call: emit immediately.
                auto it = pendingSusp.find(at);
                emit->push_back(it->second);
                pendingSusp.erase(it);
            }
            continue;
        }

        // Plain (non-awaited) release / beginUse / endUse member calls.
        if (t.ident() && i + 1 < hi && toks[i + 1].is("(") && i > lo &&
            (toks[i - 1].is(".") || toks[i - 1].is("->")) &&
            (t.is("release") || t.is("unlock") || t.is("endUse") ||
             t.is("beginUse"))) {
            // Chain start: walk back over ident/::/./-> tokens.
            size_t cs = i - 1;
            while (cs > lo &&
                   (toks[cs - 1].ident() || toks[cs - 1].is("::") ||
                    toks[cs - 1].is(".") || toks[cs - 1].is("->"))) {
                --cs;
            }
            size_t close = matchTok(toks, i + 1, "(", ")");
            std::string id = spanText(toks, cs, i - 1) + "|" +
                             spanText(toks, i + 2, std::min(close, hi));
            if (emit != nullptr) {
                if (t.is("beginUse")) {
                    emit->push_back(
                        Ev{Ev::K::kAcquire, id, t.line, "", 1});
                } else {
                    emit->push_back(Ev{Ev::K::kRelease, id, t.line, "", 0});
                }
            }
        }

        // Host-thread guard declaration.
        if (t.ident() &&
            (t.is("lock_guard") || t.is("unique_lock") ||
             t.is("scoped_lock"))) {
            size_t j = i + 1;
            if (j < hi && toks[j].is("<")) {
                j = matchTok(toks, j, "<", ">");
                j = j < hi ? j + 1 : j;
            }
            if (j < hi && toks[j].ident() && j + 1 < hi &&
                (toks[j + 1].is("(") || toks[j + 1].is("{"))) {
                if (emit != nullptr) {
                    emit->push_back(Ev{Ev::K::kGuard,
                                       toks[j].text + "|", t.line, "", 0});
                }
            }
        }

        // Vector-outcome inspection: `var . results` / `.status` /
        // `.ok(`.
        if (t.ident() && i + 2 < hi &&
            (toks[i + 1].is(".") || toks[i + 1].is("->")) &&
            toks[i + 2].ident() && emit == nullptr) {
            if (toks[i + 2].is("results")) {
                ctx.vecResultsSeen.insert(t.text);
            } else if (toks[i + 2].is("status") || toks[i + 2].is("ok")) {
                ctx.vecStatusSeen.insert(t.text);
            }
        }

        // Returning the whole outcome (`co_return out;`) escapes it:
        // the caller inherits the inspection obligation (forwarding
        // wrappers stay clean). Returning a projection of it
        // (`co_return out.status;`) does not — that is exactly the
        // results-dropped shape the rule exists for.
        if (t.ident() && i > lo && emit == nullptr &&
            (toks[i - 1].is("return") || toks[i - 1].is("co_return")) &&
            i + 1 < hi && toks[i + 1].is(";")) {
            ctx.vecResultsSeen.insert(t.text);
        }

        // Tracked-borrow uses / rebinds.
        if (emit != nullptr && t.ident() &&
            ctx.tracked.count(t.text) != 0 &&
            (i == lo || (!toks[i - 1].is(".") && !toks[i - 1].is("->") &&
                         !toks[i - 1].is("::")))) {
            if (i == decl.nameIdx) {
                if (declBorrows) {
                    emit->push_back(Ev{Ev::K::kBind, t.text, t.line, "", 0});
                } else if (!decl.isDecl) {
                    // Reassigned to a non-borrow: kill.
                    emit->push_back(Ev{Ev::K::kKill, t.text, t.line, "", 0});
                }
            } else {
                emit->push_back(Ev{Ev::K::kUse, t.text, t.line, "", 0});
            }
        }

        // Flush any suspend whose operand ends here.
        auto ps = pendingSusp.find(i);
        if (ps != pendingSusp.end()) {
            if (emit != nullptr) {
                Ev &ev = ps->second;
                if (ev.lockKind == 2) {
                    // tryAcquire: suspend (non-spinning), then held.
                    emit->push_back(
                        Ev{Ev::K::kSuspend, "", ev.line, "", 0});
                    emit->push_back(
                        Ev{Ev::K::kAcquire, ev.id, ev.line, "", 0});
                } else if (ev.lockKind == 3) {
                    emit->push_back(
                        Ev{Ev::K::kSuspend, "", ev.line, "", 0});
                    emit->push_back(
                        Ev{Ev::K::kRelease, ev.id, ev.line, "", 0});
                } else if (!ev.spinId.empty()) {
                    emit->push_back(Ev{Ev::K::kSuspend, "", ev.line,
                                       ev.spinId, 0});
                    emit->push_back(
                        Ev{Ev::K::kAcquire, ev.spinId, ev.line, "", 0});
                } else {
                    emit->push_back(Ev{Ev::K::kSuspend, "", ev.line, "", 0});
                }
            }
            pendingSusp.erase(ps);
        }
    }
    if (emit != nullptr) {
        for (auto &[at, ev] : pendingSusp) {
            (void)at;
            if (!ev.spinId.empty()) {
                emit->push_back(
                    Ev{Ev::K::kSuspend, "", ev.line, ev.spinId, 0});
                emit->push_back(
                    Ev{Ev::K::kAcquire, ev.spinId, ev.line, "", 0});
            } else if (ev.lockKind == 2) {
                emit->push_back(Ev{Ev::K::kSuspend, "", ev.line, "", 0});
                emit->push_back(Ev{Ev::K::kAcquire, ev.id, ev.line, "", 0});
            } else if (ev.lockKind == 3) {
                emit->push_back(Ev{Ev::K::kSuspend, "", ev.line, "", 0});
                emit->push_back(Ev{Ev::K::kRelease, ev.id, ev.line, "", 0});
            } else {
                emit->push_back(Ev{Ev::K::kSuspend, "", ev.line, "", 0});
            }
        }
    }
}

// ----------------------------------------------------------------------
// CFG
// ----------------------------------------------------------------------

struct BB
{
    std::vector<Ev> evs;
    std::vector<int> succ;
};

struct Cfg
{
    std::vector<BB> bbs;
    int exit = 1; // bbs[0] = entry, bbs[1] = exit
};

struct Lowerer
{
    FnCtx &ctx;
    Cfg &cfg;

    int
    fresh()
    {
        cfg.bbs.emplace_back();
        return static_cast<int>(cfg.bbs.size()) - 1;
    }

    void
    edge(int from, int to)
    {
        cfg.bbs[from].succ.push_back(to);
    }

    void
    emitRange(int bb, size_t lo, size_t hi, bool rangeFor)
    {
        scanRange(ctx, lo, hi, rangeFor, &cfg.bbs[bb].evs);
    }

    /** Lower @p stmts starting in @p cur; returns the block after. */
    int
    lower(const std::vector<Stmt> &stmts, int cur, int breakTo,
          int continueTo)
    {
        std::vector<std::string> scopeGuards;
        for (const Stmt &s : stmts) {
            cur = lowerOne(s, cur, breakTo, continueTo, &scopeGuards);
        }
        for (const std::string &g : scopeGuards) {
            cfg.bbs[cur].evs.push_back(Ev{Ev::K::kGuardKill, g, 0, "", 0});
        }
        return cur;
    }

    int
    lowerOne(const Stmt &s, int cur, int breakTo, int continueTo,
             std::vector<std::string> *scopeGuards)
    {
        switch (s.k) {
        case Stmt::K::kSimple:
        case Stmt::K::kReturn: {
            size_t before = cfg.bbs[cur].evs.size();
            emitRange(cur, s.lo, s.hi, false);
            if (scopeGuards != nullptr) {
                for (size_t i = before; i < cfg.bbs[cur].evs.size(); ++i) {
                    if (cfg.bbs[cur].evs[i].k == Ev::K::kGuard) {
                        scopeGuards->push_back(cfg.bbs[cur].evs[i].id);
                    }
                }
            }
            if (s.k == Stmt::K::kReturn) {
                edge(cur, cfg.exit);
                return fresh(); // unreachable continuation
            }
            return cur;
        }
        case Stmt::K::kBlock: {
            return lower(s.kids, cur, breakTo, continueTo);
        }
        case Stmt::K::kIf: {
            emitRange(cur, s.condLo, s.condHi, false);
            int join = fresh();
            int thenB = fresh();
            edge(cur, thenB);
            int thenEnd =
                lowerOne(s.kids[0], thenB, breakTo, continueTo, nullptr);
            edge(thenEnd, join);
            if (s.kids.size() > 1) {
                int elseB = fresh();
                edge(cur, elseB);
                int elseEnd = lowerOne(s.kids[1], elseB, breakTo,
                                       continueTo, nullptr);
                edge(elseEnd, join);
            } else {
                edge(cur, join);
            }
            return join;
        }
        case Stmt::K::kLoop: {
            int head = fresh();
            edge(cur, head);
            emitRange(head, s.condLo, s.condHi, s.rangeFor);
            int after = fresh();
            int body = fresh();
            edge(head, body);
            edge(head, after);
            int bodyEnd = lowerOne(s.kids[0], body, after, head, nullptr);
            edge(bodyEnd, head);
            return after;
        }
        case Stmt::K::kDoWhile: {
            int body = fresh();
            edge(cur, body);
            int after = fresh();
            int head = fresh();
            int bodyEnd = lowerOne(s.kids[0], body, after, head, nullptr);
            edge(bodyEnd, head);
            emitRange(head, s.condLo, s.condHi, false);
            edge(head, body);
            edge(head, after);
            return after;
        }
        case Stmt::K::kSwitch: {
            emitRange(cur, s.condLo, s.condHi, false);
            int after = fresh();
            edge(cur, after); // no-case / no-default fallthrough
            // Each kCase marker starts a new block with an edge from
            // the switch head; consecutive blocks keep the real
            // fallthrough edge.
            const std::vector<Stmt> &body =
                s.kids[0].k == Stmt::K::kBlock ? s.kids[0].kids
                                               : s.kids;
            int caseB = fresh();
            edge(cur, caseB);
            int run = caseB;
            for (const Stmt &k : body) {
                if (k.k == Stmt::K::kCase) {
                    int next = fresh();
                    edge(run, next); // fallthrough
                    edge(cur, next); // direct dispatch
                    run = next;
                    continue;
                }
                run = lowerOne(k, run, after, continueTo, nullptr);
            }
            edge(run, after);
            return after;
        }
        case Stmt::K::kCase:
            return cur; // only meaningful inside kSwitch handling
        case Stmt::K::kBreak:
            if (breakTo >= 0) {
                edge(cur, breakTo);
            }
            return fresh();
        case Stmt::K::kContinue:
            if (continueTo >= 0) {
                edge(cur, continueTo);
            }
            return fresh();
        }
        return cur;
    }
};

// ----------------------------------------------------------------------
// Dataflow
// ----------------------------------------------------------------------

struct LockSt
{
    int line = 0;
    int kind = 0; // 0 spin/try, 1 beginUse, 2 guard

    bool
    operator==(const LockSt &o) const
    {
        return line == o.line && kind == o.kind;
    }
};

struct BorrowSt
{
    int bindLine = 0;
    bool stale = false;

    bool
    operator==(const BorrowSt &o) const
    {
        return bindLine == o.bindLine && stale == o.stale;
    }
};

struct St
{
    bool reachable = false;
    std::map<std::string, LockSt> held;
    std::map<std::string, BorrowSt> borrows;

    bool
    operator==(const St &o) const
    {
        return reachable == o.reachable && held == o.held &&
               borrows == o.borrows;
    }
};

void
joinInto(St &into, const St &from)
{
    if (!from.reachable) {
        return;
    }
    into.reachable = true;
    for (const auto &[id, l] : from.held) {
        auto it = into.held.find(id);
        if (it == into.held.end()) {
            into.held[id] = l;
        } else if (l.line < it->second.line) {
            it->second.line = l.line;
        }
    }
    for (const auto &[v, b] : from.borrows) {
        auto it = into.borrows.find(v);
        if (it == into.borrows.end()) {
            into.borrows[v] = b;
        } else {
            if (b.stale && !it->second.stale) {
                it->second = b; // keep the stale binding's line
            }
        }
    }
}

struct Reporter
{
    std::string_view path;
    const SourceModel *model = nullptr;
    std::vector<Finding> *out = nullptr;
    std::set<std::string> emitted;

    void
    report(Rule rule, int line, int originLine, const std::string &key,
           std::string msg)
    {
        std::string dedup =
            std::to_string(static_cast<int>(rule)) + ":" +
            std::to_string(line) + ":" + key;
        if (emitted.count(dedup) != 0) {
            return;
        }
        emitted.insert(dedup);
        if (suppressedAt(*model, line, rule) ||
            (originLine != 0 && suppressedAt(*model, originLine, rule))) {
            return;
        }
        out->push_back(
            Finding{rule, std::string(path), line, std::move(msg)});
    }
};

/** Human-readable lock identity: "chain(args)" from "chain|args". */
std::string
prettyId(const std::string &id)
{
    size_t bar = id.find('|');
    if (bar == std::string::npos) {
        return id;
    }
    return id.substr(0, bar) + "(" + id.substr(bar + 1) + ")";
}

void
transfer(const BB &bb, St &st, Reporter *rep)
{
    for (const Ev &ev : bb.evs) {
        switch (ev.k) {
        case Ev::K::kSuspend: {
            if (!ev.spinId.empty() && rep != nullptr) {
                for (const auto &[id, l] : st.held) {
                    if (id != ev.spinId && l.kind != 1) {
                        rep->report(
                            Rule::kLockAcrossSuspension, ev.line, l.line,
                            id,
                            "suspending on " + prettyId(ev.spinId) +
                                ".acquire() while still holding " +
                                prettyId(id) + " (acquired line " +
                                std::to_string(l.line) +
                                "): cross-order deadlock if another "
                                "coroutine acquires in the opposite "
                                "order — release first, or merge into "
                                "one ordered acquisition");
                    }
                }
            }
            if (rep != nullptr) {
                for (const auto &[id, l] : st.held) {
                    if (l.kind == 2) {
                        rep->report(
                            Rule::kLockAcrossSuspension, ev.line, l.line,
                            id,
                            "co_await while host-thread guard " +
                                prettyId(id) + " (line " +
                                std::to_string(l.line) +
                                ") is live: the guard blocks the OS "
                                "thread across the suspension — use the "
                                "awaited SpinLock protocol instead");
                    }
                }
            }
            for (auto &[v, b] : st.borrows) {
                (void)v;
                b.stale = true;
            }
            break;
        }
        case Ev::K::kAcquire:
            st.held[ev.id] = LockSt{ev.line, ev.lockKind};
            break;
        case Ev::K::kRelease:
            st.held.erase(ev.id);
            break;
        case Ev::K::kGuard:
            st.held[ev.id] = LockSt{ev.line, 2};
            break;
        case Ev::K::kGuardKill:
            st.held.erase(ev.id);
            break;
        case Ev::K::kBind:
            st.borrows[ev.id] = BorrowSt{ev.line, false};
            break;
        case Ev::K::kKill:
            st.borrows.erase(ev.id);
            break;
        case Ev::K::kUse: {
            auto it = st.borrows.find(ev.id);
            if (it != st.borrows.end() && it->second.stale &&
                rep != nullptr) {
                rep->report(
                    Rule::kUseAfterSuspension, ev.line,
                    it->second.bindLine, ev.id,
                    "'" + ev.id + "' borrows external state (bound line " +
                        std::to_string(it->second.bindLine) +
                        ") and is used after a suspension point that may "
                        "have invalidated it — rebind after the co_await "
                        "or copy the value before suspending");
            }
            break;
        }
        }
    }
}

// ----------------------------------------------------------------------
// Per-function analysis
// ----------------------------------------------------------------------

void analyzeRange(std::string_view path, const SourceModel &s, size_t lo,
                  size_t hi, std::vector<Finding> &out);

void
analyzeFunction(std::string_view path, const SourceModel &s, size_t lo,
                size_t hi, std::vector<Finding> &out)
{
    const Toks &toks = s.tokens;
    std::vector<Stmt> stmts = parseStmts(toks, lo, hi);

    FnCtx ctx;
    ctx.toks = &toks;
    ctx.collectLambdas = true;

    // Bind pre-pass, in textual order, so uses textually before a
    // loop-carried bind still resolve. Transitive externality needs
    // binds processed in order; the tree walk below is textual.
    struct PrePass
    {
        FnCtx &ctx;
        void
        walk(const std::vector<Stmt> &ss)
        {
            for (const Stmt &st : ss) {
                if (st.k == Stmt::K::kSimple ||
                    st.k == Stmt::K::kReturn) {
                    scanRange(ctx, st.lo, st.hi, false, nullptr);
                } else {
                    if (st.condHi > st.condLo) {
                        scanRange(ctx, st.condLo, st.condHi, st.rangeFor,
                                  nullptr);
                    }
                    walk(st.kids);
                }
            }
        }
    } pre{ctx};
    pre.walk(stmts);
    ctx.collectLambdas = false;

    // CFG lowering (emit pass).
    Cfg cfg;
    cfg.bbs.resize(2); // entry, exit
    Lowerer low{ctx, cfg};
    int end = low.lower(stmts, 0, -1, -1);
    low.edge(end, cfg.exit);

    // Forward may-dataflow to fixpoint, reporting as states grow
    // (states are monotone under union joins, so every early report is
    // valid at the fixpoint; the dedup set absorbs revisits).
    Reporter rep{path, &s, &out, {}};
    size_t n = cfg.bbs.size();
    std::vector<St> in(n), outSt(n);
    in[0].reachable = true;
    std::vector<int> work;
    work.push_back(0);
    std::vector<bool> queued(n, false);
    queued[0] = true;
    int iterations = 0;
    while (!work.empty() && iterations < 10000) {
        ++iterations;
        int b = work.back();
        work.pop_back();
        queued[b] = false;
        St st = in[b];
        if (!st.reachable) {
            continue;
        }
        transfer(cfg.bbs[b], st, &rep);
        if (st == outSt[b]) {
            continue;
        }
        outSt[b] = st;
        for (int succ : cfg.bbs[b].succ) {
            St merged = in[succ];
            joinInto(merged, st);
            if (!(merged == in[succ])) {
                in[succ] = merged;
                if (!queued[succ]) {
                    work.push_back(succ);
                    queued[succ] = true;
                }
            }
        }
    }

    // remora-release-on-all-paths: may-held at exit, for identities the
    // function does release somewhere (a paired shape; acquire-only
    // helpers stay silent). Guards are RAII and exempt.
    std::set<std::string> releasedSomewhere;
    for (const BB &bb : cfg.bbs) {
        for (const Ev &ev : bb.evs) {
            if (ev.k == Ev::K::kRelease) {
                releasedSomewhere.insert(ev.id);
            }
        }
    }
    for (const auto &[id, l] : in[cfg.exit].held) {
        if (l.kind == 2 || releasedSomewhere.count(id) == 0) {
            continue;
        }
        rep.report(Rule::kReleaseOnAllPaths, l.line, 0, id,
                   prettyId(id) +
                       " is released on some paths but an early exit "
                       "can leave it held — release before every "
                       "return, or hold it in a scoped owner "
                       "(advisory)");
    }

    // remora-unchecked-vector-status: function-global inspection check.
    for (const VecBind &vb : ctx.vecBinds) {
        bool inspected =
            ctx.vecResultsSeen.count(vb.var) != 0 ||
            (vb.callee == "writev" &&
             ctx.vecStatusSeen.count(vb.var) != 0);
        if (!inspected) {
            rep.report(
                Rule::kUncheckedVectorStatus, vb.line, 0, vb.var,
                "outcome of " + vb.callee + "() bound to '" + vb.var +
                    "' but its per-sub-op .results are never "
                    "inspected: a stale generation fails the sub-op, "
                    "not the batch (advisory)");
        }
    }
    for (const auto &[line, callee] : ctx.vecDiscards) {
        rep.report(Rule::kUncheckedVectorStatus, line, 0, callee,
                   "result of awaited " + callee +
                       "() discarded: per-sub-op statuses are the only "
                       "way to observe partial failure (advisory)");
    }

    // Nested lambdas: independent analysis units.
    for (const auto &[llo, lhi] : ctx.lambdas) {
        analyzeRange(path, s, llo, lhi, out);
    }
}

void
analyzeRange(std::string_view path, const SourceModel &s, size_t lo,
             size_t hi, std::vector<Finding> &out)
{
    analyzeFunction(path, s, lo, hi, out);
}

} // namespace

void
checkFlowRules(std::string_view path, const SourceModel &s,
               const Options &opts, std::vector<Finding> &out)
{
    (void)opts;
    for (const FnRange &fn : extractFunctions(s.tokens)) {
        analyzeFunction(path, s, fn.lbrace + 1, fn.rbrace, out);
    }
}

} // namespace remora::lint
