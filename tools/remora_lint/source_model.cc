#include "source_model.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace remora::lint {

namespace {

/** clang-tidy check names accepted as NOLINT aliases for each rule. */
const char *const kRefParamAliases[] = {
    "cppcoreguidelines-avoid-reference-coroutine-parameters",
};
const char *const kNondetAliases[] = {
    "cert-msc50-cpp",
    "cert-msc51-cpp",
};
const char *const kRefCaptureAliases[] = {
    "cppcoreguidelines-avoid-capturing-lambda-coroutines",
};
const char *const kDetachedAliases[] = {
    "bugprone-unused-return-value",
};
const char *const kVectorStatusAliases[] = {
    "bugprone-unused-return-value",
};

/** Parse one NOLINT/NOLINTNEXTLINE occurrence inside a comment. */
void
harvestNolint(std::string_view comment, int line, SourceModel &out)
{
    size_t pos = 0;
    while ((pos = comment.find("NOLINT", pos)) != std::string_view::npos) {
        size_t cur = pos + 6;
        int target = line;
        if (comment.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
            cur = pos + 14;
            target = line + 1;
        }
        std::set<std::string> checks; // empty == suppress everything
        if (cur < comment.size() && comment[cur] == '(') {
            size_t close = comment.find(')', cur);
            if (close != std::string_view::npos) {
                std::string list(comment.substr(cur + 1, close - cur - 1));
                std::string item;
                std::istringstream ss(list);
                while (std::getline(ss, item, ',')) {
                    item.erase(std::remove_if(item.begin(), item.end(),
                                              [](char c) {
                                                  return std::isspace(
                                                      static_cast<
                                                          unsigned char>(c));
                                              }),
                               item.end());
                    if (!item.empty()) {
                        checks.insert(item);
                    }
                }
                cur = close + 1;
            }
        }
        auto &slot = out.lineSupp[target];
        if (checks.empty()) {
            slot.clear();
            slot.insert("*");
        } else if (slot.find("*") == slot.end()) {
            slot.insert(checks.begin(), checks.end());
        }
        pos = cur;
    }
}

/** True when the text of @p line so far is just "#include" (plus space). */
bool
lineIsIncludeDirective(const std::string &text, size_t stringStart)
{
    size_t lineStart = text.rfind('\n', stringStart);
    lineStart = lineStart == std::string::npos ? 0 : lineStart + 1;
    std::string prefix = text.substr(lineStart, stringStart - lineStart);
    prefix.erase(std::remove_if(prefix.begin(), prefix.end(),
                                [](char c) {
                                    return std::isspace(
                                        static_cast<unsigned char>(c));
                                }),
                 prefix.end());
    return prefix == "#include" || prefix == "#include_next";
}

void
scrub(std::string_view src, SourceModel &out)
{
    out.text.assign(src.begin(), src.end());
    std::string &t = out.text;
    int line = 1;
    size_t i = 0;
    auto blank = [&t](size_t from, size_t to) {
        for (size_t k = from; k < to && k < t.size(); ++k) {
            if (t[k] != '\n') {
                t[k] = ' ';
            }
        }
    };
    while (i < t.size()) {
        char c = t[i];
        if (c == '\n') {
            ++line;
            ++i;
        } else if (c == '/' && i + 1 < t.size() && t[i + 1] == '/') {
            size_t end = t.find('\n', i);
            end = end == std::string::npos ? t.size() : end;
            harvestNolint(std::string_view(t).substr(i, end - i), line, out);
            blank(i, end);
            i = end;
        } else if (c == '/' && i + 1 < t.size() && t[i + 1] == '*') {
            size_t end = t.find("*/", i + 2);
            end = end == std::string::npos ? t.size() : end + 2;
            // Block comments suppress relative to their starting line.
            harvestNolint(std::string_view(t).substr(i, end - i), line, out);
            for (size_t k = i; k < end; ++k) {
                if (t[k] == '\n') {
                    ++line;
                }
            }
            blank(i, end);
            i = end;
        } else if (c == 'R' && i + 1 < t.size() && t[i + 1] == '"') {
            // Raw string literal: R"delim( ... )delim".
            size_t open = t.find('(', i + 2);
            if (open == std::string::npos) {
                ++i;
                continue;
            }
            std::string delim = ")" + t.substr(i + 2, open - i - 2) + "\"";
            size_t end = t.find(delim, open + 1);
            end = end == std::string::npos ? t.size() : end + delim.size();
            for (size_t k = i; k < end; ++k) {
                if (t[k] == '\n') {
                    ++line;
                }
            }
            blank(i, end);
            i = end;
        } else if (c == '"') {
            size_t start = i;
            size_t j = i + 1;
            while (j < t.size() && t[j] != '"' && t[j] != '\n') {
                if (t[j] == '\\') {
                    ++j;
                }
                ++j;
            }
            j = j < t.size() ? j + 1 : j;
            if (!lineIsIncludeDirective(t, start)) {
                blank(start + 1, j - 1);
            }
            i = j;
        } else if (c == '\'') {
            size_t j = i + 1;
            while (j < t.size() && t[j] != '\'' && t[j] != '\n') {
                if (t[j] == '\\') {
                    ++j;
                }
                ++j;
            }
            j = j < t.size() ? j + 1 : j;
            blank(i + 1, j - 1);
            i = j;
        } else {
            ++i;
        }
    }
}

std::vector<Token>
tokenize(const std::string &text)
{
    std::vector<Token> toks;
    int line = 1;
    size_t i = 0;
    while (i < text.size()) {
        char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
        } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            ++i;
        } else if (isIdentChar(c) &&
                   std::isdigit(static_cast<unsigned char>(c)) == 0) {
            size_t j = i;
            while (j < text.size() && isIdentChar(text[j])) {
                ++j;
            }
            toks.push_back({Token::Kind::kIdent, text.substr(i, j - i), line});
            i = j;
        } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
            // Numbers (incl. hex/suffixes) collapse to one token.
            size_t j = i;
            while (j < text.size() &&
                   (isIdentChar(text[j]) || text[j] == '.' ||
                    ((text[j] == '+' || text[j] == '-') && j > i &&
                     (text[j - 1] == 'e' || text[j - 1] == 'E')))) {
                ++j;
            }
            toks.push_back({Token::Kind::kIdent, text.substr(i, j - i), line});
            i = j;
        } else {
            // Multi-char puncts that matter to the passes; the rest lex
            // as single characters.
            static const char *const kCompound[] = {"::", "->", "<<", ">>"};
            std::string tok(1, c);
            for (const char *p : kCompound) {
                if (text.compare(i, 2, p) == 0) {
                    tok = p;
                    break;
                }
            }
            toks.push_back({Token::Kind::kPunct, tok, line});
            i += tok.size();
        }
    }
    return toks;
}

} // namespace

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

SourceModel
buildSourceModel(std::string_view src)
{
    SourceModel model;
    scrub(src, model);
    model.tokens = tokenize(model.text);
    return model;
}

bool
suppressedAt(const SourceModel &model, int line, Rule rule)
{
    auto it = model.lineSupp.find(line);
    if (it == model.lineSupp.end()) {
        return false;
    }
    const std::set<std::string> &checks = it->second;
    if (checks.count("*") != 0 || checks.count(ruleName(rule)) != 0) {
        return true;
    }
    auto any = [&checks](const char *const *aliases, size_t n) {
        for (size_t i = 0; i < n; ++i) {
            if (checks.count(aliases[i]) != 0) {
                return true;
            }
        }
        return false;
    };
    if (rule == Rule::kCoroutineRefParam ||
        rule == Rule::kCoroutinePtrParam) {
        return any(kRefParamAliases, std::size(kRefParamAliases));
    }
    if (rule == Rule::kNondeterminism) {
        return any(kNondetAliases, std::size(kNondetAliases));
    }
    if (rule == Rule::kRefCaptureDeferred) {
        return any(kRefCaptureAliases, std::size(kRefCaptureAliases));
    }
    if (rule == Rule::kDetachedCoroutine ||
        rule == Rule::kDetachedCoroutineDetach) {
        return any(kDetachedAliases, std::size(kDetachedAliases));
    }
    if (rule == Rule::kUncheckedVectorStatus) {
        return any(kVectorStatusAliases, std::size(kVectorStatusAliases));
    }
    return false;
}

} // namespace remora::lint
