/**
 * @file
 * remora-lint driver: walk the tree, lint each source file, report.
 *
 *   remora_lint [--root DIR] [--pedantic] [--strict-pointers]
 *               [--json] [--list-rules] [--no-layers] [paths...]
 *
 * Paths (files or directories, default: src tests) are resolved against
 * --root (default: the current directory). Exit status is 1 when any
 * error-severity finding is reported. Advisory findings (raw-pointer
 * coroutine parameters — the tree's sanctioned idiom for handing
 * long-lived objects to coroutines — plus the advisory flow rules) are
 * hidden by default, printed under --pedantic, and treated as errors
 * under --strict-pointers.
 *
 * Beyond the per-file passes, the driver always feeds every scanned
 * `src/` file to the whole-tree include-layer checker (layers.h);
 * --no-layers skips it (used by fixture-driven tests). --json replaces
 * the human-readable lines with one machine-readable findings array;
 * --list-rules prints the rule table and exits.
 */
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "layers.h"
#include "lint.h"

namespace fs = std::filesystem;

namespace {

/** Read a whole file; returns false on I/O failure. */
bool
readFile(const fs::path &p, std::string *out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in) {
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

void
listRules()
{
    for (remora::lint::Rule rule : remora::lint::kAllRules) {
        std::cout << remora::lint::ruleName(rule) << "  ["
                  << (remora::lint::ruleIsError(rule) ? "error"
                                                      : "advisory")
                  << (remora::lint::ruleIsFlow(rule) ? ", flow" : "")
                  << "]\n    " << remora::lint::ruleDescription(rule)
                  << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    bool strictPointers = false;
    bool pedantic = false;
    bool json = false;
    bool layers = true;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--strict-pointers") {
            strictPointers = true;
        } else if (arg == "--pedantic") {
            pedantic = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--no-layers") {
            layers = false;
        } else if (arg == "--list-rules") {
            listRules();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: remora_lint [--root DIR] [--pedantic] "
                   "[--strict-pointers] [--json] [--list-rules] "
                   "[--no-layers] [paths...]\n";
            return 0;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        paths = {"src", "tests"};
    }

    size_t files = 0;
    std::vector<remora::lint::Finding> all;
    std::vector<std::pair<std::string, std::string>> srcFiles;
    for (const std::string &p : paths) {
        fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
        std::vector<fs::path> targets;
        std::error_code ec;
        if (fs::is_directory(abs, ec)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(abs, ec)) {
                if (entry.is_regular_file()) {
                    targets.push_back(entry.path());
                }
            }
        } else if (fs::is_regular_file(abs, ec)) {
            targets.push_back(abs);
        } else {
            std::cerr << "remora-lint: cannot open " << abs << "\n";
            return 2;
        }
        std::sort(targets.begin(), targets.end());
        for (const fs::path &file : targets) {
            std::string rel = fs::relative(file, root, ec).generic_string();
            rel = ec || rel.empty() ? file.generic_string() : rel;
            if (!remora::lint::shouldLint(rel)) {
                continue;
            }
            std::string text;
            if (!readFile(file, &text)) {
                std::cerr << "remora-lint: cannot read " << file << "\n";
                return 2;
            }
            ++files;
            auto findings = remora::lint::lintSource(
                rel, text, remora::lint::optionsForPath(rel));
            all.insert(all.end(), findings.begin(), findings.end());
            if (layers && rel.rfind("src/", 0) == 0) {
                srcFiles.emplace_back(rel, std::move(text));
            }
        }
    }

    size_t layerFindings = 0;
    if (layers) {
        auto lf = remora::lint::checkIncludeLayers(srcFiles);
        layerFindings = lf.size();
        all.insert(all.end(), lf.begin(), lf.end());
    }

    size_t errors = 0;
    size_t advisories = 0;
    size_t flowFindings = 0;
    std::vector<remora::lint::Finding> shown;
    for (const auto &f : all) {
        bool isError = remora::lint::ruleIsError(f.rule) || strictPointers;
        (isError ? errors : advisories) += 1;
        flowFindings += remora::lint::ruleIsFlow(f.rule) ? 1 : 0;
        if (isError || pedantic) {
            shown.push_back(f);
            if (!json) {
                std::cout << f.format() << "\n";
            }
        }
    }
    if (json) {
        std::cout << remora::lint::findingsToJson(shown) << "\n";
    } else {
        std::cout << "remora-lint: " << files << " files scanned, "
                  << errors << " error(s), " << advisories
                  << " advisory note(s), " << flowFindings
                  << " flow finding(s), " << layerFindings
                  << " layer violation(s)\n";
    }
    return errors != 0 ? 1 : 0;
}
