/**
 * @file
 * remora-flow: flow-sensitive suspension-point hazard analysis.
 *
 * The pass builds, per function, a control-flow graph from the shared
 * token stream (source_model.h) — branches, loops, switch cases, early
 * `return`/`co_return`, `break`/`continue`, and `co_await` expressions
 * as first-class suspension nodes — and runs a forward may-dataflow
 * over it (union joins, worklist to fixpoint). Four rules ride on the
 * fixpoint state:
 *
 *  - remora-lock-across-suspension (error): a lock acquired by an
 *    awaited `acquire()` is still may-held when the function suspends
 *    on a *different* lock's spinning `acquire()` — the static form of
 *    the cross-order deadlocks remora-mc finds by schedule exploration
 *    — or a host-thread guard (`std::lock_guard`/`unique_lock`/
 *    `scoped_lock`) is live at *any* `co_await` (the guard blocks the
 *    host thread; an awaited lock only parks the coroutine, so awaited
 *    work under an awaited lock is the tree's core idiom and is not
 *    flagged).
 *  - remora-use-after-suspension (error): a local bound to borrowed
 *    data (an iterator/view/element reference into state that other
 *    coroutines can mutate during a suspension) is used after a
 *    `co_await` that may have invalidated it.
 *  - remora-release-on-all-paths (advisory): the function pairs an
 *    acquire with a release (`acquire`/`release`, `beginUse`/`endUse`),
 *    but some early-exit path reaches the end still holding.
 *  - remora-unchecked-vector-status (advisory): an awaited vectored
 *    op's outcome whose per-sub-op `.results` are never inspected (the
 *    PR 6 contract: a stale generation fails the sub-op, not the
 *    batch), or a vectored outcome discarded outright.
 *
 * Nested lambdas are separate analysis units: a suspension inside a
 *lambda body neither suspends the enclosing function nor suppresses
 * its analysis; the lambda gets its own CFG and findings.
 *
 * Known imprecision (documented in DESIGN.md §14): no alias analysis
 * (borrows through plain parameter pointers are missed), cross-function
 * borrows are invisible, `tryAcquire` success is assumed on all paths
 * (may-held), and switch models explicit fallthrough edges but not
 * case-range feasibility.
 */
#pragma once

#include <string_view>
#include <vector>

#include "lint.h"

namespace remora::lint {

struct SourceModel;

/**
 * Run the four flow rules over every function in @p s, appending
 * findings labeled with @p path. NOLINT suppression is honored at the
 * reporting line and at the binding/acquire line that gave rise to the
 * tracked state.
 */
void checkFlowRules(std::string_view path, const SourceModel &s,
                    const Options &opts, std::vector<Finding> &out);

} // namespace remora::lint
