/**
 * @file
 * Whole-tree include-layer enforcement for the remora module diagram.
 *
 * The paper's separation of concerns maps onto a strict layering of
 * `src/` modules; an include edge must always point *down* the diagram
 * (toward more primitive layers), and the include DAG must be acyclic
 * even within one module. The enforced ranks, bottom to top:
 *
 *     util(0) < sim(1) < obs(2) < net(3) < mem(4) < rmem(5)
 *             < rpc(6) < names(7) = dfs(7) < trace(8)
 *
 * This refines the coarse diagram in ISSUE 9 (`util → sim → mem/net →
 * rmem → rpc/names/dfs/obs`) to match the tree's reality: obs is the
 * observability *substrate* (counters, trace sinks) that net/mem/rmem
 * all instrument themselves with, so it sits just above sim rather
 * than at the top; trace is the top-layer consumer that renders other
 * modules' events. Equal-rank modules (names, dfs) may not include
 * each other.
 *
 * An edge is allowed iff the includer and includee are in the same
 * module, or rank(includee) < rank(includer). Files outside `src/`
 * (tests, tools, bench, examples) are application-layer: they may
 * include anything and are excluded from the DAG. Violations report
 * as `remora-include-layer` (error) and honor NOLINT on the include
 * line like every other rule.
 */
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "lint.h"

namespace remora::lint {

/**
 * Layer rank of a src-relative module name ("util", "rmem", …), or -1
 * when the module is unknown (itself reported as a layer error so the
 * diagram and the tree cannot drift apart silently).
 */
int layerRank(std::string_view module);

/**
 * Check the include-layer rules over a set of files.
 *
 * @param files (repo-relative path, full source text) pairs. Only
 *        `src/<module>/...` files contribute DAG nodes and are checked
 *        for upward edges; other files are ignored, so the caller can
 *        pass everything it scanned.
 * @return Findings: upward/lateral include edges, includes of unknown
 *         modules, and include cycles (each cycle reported once, on
 *         its lexicographically first file).
 */
std::vector<Finding>
checkIncludeLayers(const std::vector<std::pair<std::string, std::string>> &files);

} // namespace remora::lint
