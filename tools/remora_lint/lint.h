/**
 * @file
 * remora-lint: project-specific hazard checks for the remora tree.
 *
 * A light single-file lexer (comments/strings stripped, identifiers and
 * punctuation tokenized; source_model.h) drives the rule families that
 * general-purpose tools either miss or cannot know about:
 *
 *  - coroutine-param hazards: a `sim::Task<...>` coroutine copies its
 *    by-value parameters into the coroutine frame, but reference and
 *    `string_view` parameters silently bind to caller temporaries that
 *    die at the first suspension point (the PR 1 dangling-reference bug
 *    class). Pointer parameters cannot bind temporaries — taking `&x`
 *    of a prvalue is ill-formed — and are the tree's documented idiom
 *    for handing long-lived objects to detached coroutine lambdas, so
 *    they are reported as advisory rather than as errors.
 *  - deferred-lambda captures: a lambda handed to
 *    `Simulator::schedule`/`scheduleAt` runs after the enclosing scope
 *    has unwound, and a coroutine lambda (`-> Task<...>`) suspends
 *    past it; in both, `[&]`-style by-reference captures dangle — the
 *    same bug family as the coroutine-param rules, one level up.
 *  - detached coroutines: Task<...> starts eagerly, so a call whose
 *    result is discarded (bare statement or `(void)` cast) silently
 *    detaches the frame with nothing owning it or recording the
 *    intent; fire-and-forget must be spelled `.detach()`, which is
 *    itself reported as an advisory so the sites stay auditable.
 *  - nondeterminism sources: the simulator's contract is bit-identical
 *    replay, so wall-clock and platform randomness (`std::rand`,
 *    `time(nullptr)`, `std::chrono::system_clock`, `std::random_device`)
 *    are banned outside `sim/random`, which wraps seeding explicitly.
 *  - include hygiene: no relative `../`/`./` includes, and quoted
 *    project includes must carry their module prefix ("sim/task.h",
 *    never "task.h") so the include graph mirrors the layer diagram.
 *  - flow rules (remora-flow, flow.h): a per-function CFG with
 *    `co_await` expressions as first-class suspension nodes, plus a
 *    forward dataflow pass, finds lock-held-across-suspension,
 *    use-after-suspension, skipped-release-on-early-exit, and
 *    unchecked vectored-op statuses on every path.
 *  - include layers (layers.h, whole-tree): the project include DAG
 *    must be acyclic and respect the module layer diagram.
 *
 * Suppression uses clang-tidy's spelling so one comment silences both
 * tools: `// NOLINT(<check>)` on the offending line or
 * `// NOLINTNEXTLINE(<check>)` on the line above, where <check> is a
 * remora-lint rule name or a matching clang-tidy check name. A bare
 * NOLINT (no parenthesized list) silences every rule on that line.
 */
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace remora::lint {

/** Rule families, used for reporting and NOLINT matching. */
enum class Rule
{
    /** Reference / string_view parameter on a coroutine (error). */
    kCoroutineRefParam,
    /** Raw-pointer parameter on a named coroutine (advisory). */
    kCoroutinePtrParam,
    /**
     * By-reference capture on a lambda whose frame outlives the
     * enclosing scope: handed to Simulator::schedule/scheduleAt, or a
     * coroutine lambda (`-> Task<...>`) that can suspend (error).
     */
    kRefCaptureDeferred,
    /**
     * A TU-local Task-returning coroutine started and discarded — bare
     * call statement or `(void)` cast — so the eager frame detaches
     * with no owner and no visible intent (error).
     */
    kDetachedCoroutine,
    /**
     * Immediate `.detach()` of a coroutine temporary: sanctioned
     * fire-and-forget, reported so the sites stay auditable (advisory).
     * Shares the NOLINT name remora-detached-coroutine with the error
     * form.
     */
    kDetachedCoroutineDetach,
    /**
     * A scalar engine `write()`/`read()` awaited inside a loop body:
     * every iteration pays a full trap, validation, and frame, where a
     * single vectored `writev()`/`readv()` batch would pay them once
     * (advisory).
     */
    kScalarOpLoop,
    /** Banned wall-clock / platform-randomness source (error). */
    kNondeterminism,
    /** Relative or unprefixed project include (error). */
    kIncludeHygiene,
    /**
     * Flow rule: a SpinLock/token acquired by an awaited `acquire()`
     * is still held when the function suspends on a *different* lock's
     * spinning `acquire()` — the static form of the cross-order
     * deadlocks remora-mc finds by schedule exploration — or a
     * host-thread guard (`std::lock_guard`/`unique_lock`/`scoped_lock`)
     * is live at any `co_await` (error).
     */
    kLockAcrossSuspension,
    /**
     * Flow rule: a pointer/reference/`string_view`/span local bound to
     * borrowed data (member state, pointer-deref chains, view-returning
     * calls) before a suspension point and used after it, when the
     * borrowed-from owner may have mutated during the suspension
     * (error).
     */
    kUseAfterSuspension,
    /**
     * Flow rule: a function both acquires and releases the same lock /
     * begin-end pair, but some early-exit path leaves it held
     * (advisory: the paired shape suggests the hold was meant to be
     * scoped).
     */
    kReleaseOnAllPaths,
    /**
     * Flow rule: the result of an awaited `readv`/`casv`/`issueVector`
     * whose per-sub-op statuses are never inspected, or an awaited
     * `writev` status never checked — the PR 6 contract is that a
     * stale generation fails the sub-op, not the batch (advisory).
     */
    kUncheckedVectorStatus,
    /**
     * Whole-tree rule: a `src/` include edge that climbs the layer
     * diagram upward, or a cycle in the include DAG (error).
     */
    kIncludeLayer,
};

/**
 * Every rule, for iteration (--list-rules, JSON schema). The name /
 * severity / description accessors below are switch-based with
 * -Werror=switch on remora_lint_core, so adding a Rule enumerator
 * without wiring all three is a compile error; keep this array in the
 * same order as the enum.
 */
inline constexpr Rule kAllRules[] = {
    Rule::kCoroutineRefParam,    Rule::kCoroutinePtrParam,
    Rule::kRefCaptureDeferred,   Rule::kDetachedCoroutine,
    Rule::kDetachedCoroutineDetach, Rule::kScalarOpLoop,
    Rule::kNondeterminism,       Rule::kIncludeHygiene,
    Rule::kLockAcrossSuspension, Rule::kUseAfterSuspension,
    Rule::kReleaseOnAllPaths,    Rule::kUncheckedVectorStatus,
    Rule::kIncludeLayer,
};

/** remora-lint's name for @p rule, as used in NOLINT(...) lists. */
const char *ruleName(Rule rule);

/** True when findings of @p rule fail the build (vs. advisory). */
bool ruleIsError(Rule rule);

/** One-line human description of @p rule, for --list-rules. */
const char *ruleDescription(Rule rule);

/** True for the four CFG/dataflow rules (reported in gate summaries). */
bool ruleIsFlow(Rule rule);

/** One reported violation. */
struct Finding
{
    Rule rule;
    /** Path as handed to lintSource (diagnostic label only). */
    std::string file;
    /** 1-based line of the offending construct. */
    int line = 0;
    /** Human-readable description, without the file:line prefix. */
    std::string message;

    /** "file:line: [rule] message" for terminal output. */
    std::string format() const;
};

/** Per-file knobs; defaults match a file under src/. */
struct Options
{
    /** Check coroutine parameter lists. */
    bool checkCoroutineParams = true;
    /**
     * Check by-reference captures on deferred/coroutine lambdas.
     * Disabled for tests/: a test body pumps the simulator with run()
     * inside the capturing scope, so its locals outlive every queued
     * callback and `[&]` is the idiomatic way to collect results. In
     * src/, a scheduled callback escapes the scheduling scope.
     */
    bool checkRefCaptures = true;
    /** Check for discarded / silently-detached coroutine starts. */
    bool checkDetachedCoroutines = true;
    /** Check for scalar awaited write()/read() calls inside loops. */
    bool checkScalarOpLoops = true;
    /**
     * Run the CFG/dataflow pass (flow.h): lock-across-suspension,
     * use-after-suspension, release-on-all-paths, and
     * unchecked-vector-status. On everywhere; the rules are
     * path-sensitive enough to stay quiet on driver-style code.
     */
    bool checkFlowRules = true;
    /** Check for banned nondeterminism sources. */
    bool checkNondeterminism = true;
    /** Check include style. */
    bool checkIncludes = true;
    /**
     * Require quoted includes to start with a known module directory.
     * Disabled for tests/, which include sibling fixtures directly.
     */
    bool requireModulePrefix = true;
    /**
     * Permit std::random_device: true only for sim/random.*, the one
     * sanctioned seeding point.
     */
    bool allowRandomDevice = false;
};

/**
 * Lint one translation unit.
 *
 * @param path Label used in findings (not opened; content comes in @p text).
 * @param text Full source text.
 * @param opts Per-file rule configuration.
 * @return All findings, in source order.
 */
std::vector<Finding> lintSource(std::string_view path, std::string_view text,
                                const Options &opts = {});

/**
 * Derive per-file options from a repo-relative path, applying the
 * location-based exemptions described on Options.
 */
Options optionsForPath(std::string_view relPath);

/** True when @p relPath is a file remora-lint should scan (.h/.cc/.cpp). */
bool shouldLint(std::string_view relPath);

/**
 * Findings as a machine-readable JSON array:
 * `[{"file":...,"line":N,"rule":...,"severity":"error"|"advisory",
 *    "message":...}, ...]`, sorted as given.
 */
std::string findingsToJson(const std::vector<Finding> &findings);

} // namespace remora::lint
