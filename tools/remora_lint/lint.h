/**
 * @file
 * remora-lint: project-specific hazard checks for the remora tree.
 *
 * A light single-file lexer (comments/strings stripped, identifiers and
 * punctuation tokenized) drives five rule families that general-purpose
 * tools either miss or cannot know about:
 *
 *  - coroutine-param hazards: a `sim::Task<...>` coroutine copies its
 *    by-value parameters into the coroutine frame, but reference and
 *    `string_view` parameters silently bind to caller temporaries that
 *    die at the first suspension point (the PR 1 dangling-reference bug
 *    class). Pointer parameters cannot bind temporaries — taking `&x`
 *    of a prvalue is ill-formed — and are the tree's documented idiom
 *    for handing long-lived objects to detached coroutine lambdas, so
 *    they are reported as advisory rather than as errors.
 *  - deferred-lambda captures: a lambda handed to
 *    `Simulator::schedule`/`scheduleAt` runs after the enclosing scope
 *    has unwound, and a coroutine lambda (`-> Task<...>`) suspends
 *    past it; in both, `[&]`-style by-reference captures dangle — the
 *    same bug family as the coroutine-param rules, one level up.
 *  - detached coroutines: Task<...> starts eagerly, so a call whose
 *    result is discarded (bare statement or `(void)` cast) silently
 *    detaches the frame with nothing owning it or recording the
 *    intent; fire-and-forget must be spelled `.detach()`, which is
 *    itself reported as an advisory so the sites stay auditable.
 *  - nondeterminism sources: the simulator's contract is bit-identical
 *    replay, so wall-clock and platform randomness (`std::rand`,
 *    `time(nullptr)`, `std::chrono::system_clock`, `std::random_device`)
 *    are banned outside `sim/random`, which wraps seeding explicitly.
 *  - include hygiene: no relative `../`/`./` includes, and quoted
 *    project includes must carry their module prefix ("sim/task.h",
 *    never "task.h") so the include graph mirrors the layer diagram.
 *
 * Suppression uses clang-tidy's spelling so one comment silences both
 * tools: `// NOLINT(<check>)` on the offending line or
 * `// NOLINTNEXTLINE(<check>)` on the line above, where <check> is a
 * remora-lint rule name or a matching clang-tidy check name. A bare
 * NOLINT (no parenthesized list) silences every rule on that line.
 */
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace remora::lint {

/** Rule families, used for reporting and NOLINT matching. */
enum class Rule
{
    /** Reference / string_view parameter on a coroutine (error). */
    kCoroutineRefParam,
    /** Raw-pointer parameter on a named coroutine (advisory). */
    kCoroutinePtrParam,
    /**
     * By-reference capture on a lambda whose frame outlives the
     * enclosing scope: handed to Simulator::schedule/scheduleAt, or a
     * coroutine lambda (`-> Task<...>`) that can suspend (error).
     */
    kRefCaptureDeferred,
    /**
     * A TU-local Task-returning coroutine started and discarded — bare
     * call statement or `(void)` cast — so the eager frame detaches
     * with no owner and no visible intent (error).
     */
    kDetachedCoroutine,
    /**
     * Immediate `.detach()` of a coroutine temporary: sanctioned
     * fire-and-forget, reported so the sites stay auditable (advisory).
     * Shares the NOLINT name remora-detached-coroutine with the error
     * form.
     */
    kDetachedCoroutineDetach,
    /**
     * A scalar engine `write()`/`read()` awaited inside a loop body:
     * every iteration pays a full trap, validation, and frame, where a
     * single vectored `writev()`/`readv()` batch would pay them once
     * (advisory).
     */
    kScalarOpLoop,
    /** Banned wall-clock / platform-randomness source (error). */
    kNondeterminism,
    /** Relative or unprefixed project include (error). */
    kIncludeHygiene,
};

/** remora-lint's name for @p rule, as used in NOLINT(...) lists. */
const char *ruleName(Rule rule);

/** True when findings of @p rule fail the build (vs. advisory). */
bool ruleIsError(Rule rule);

/** One reported violation. */
struct Finding
{
    Rule rule;
    /** Path as handed to lintSource (diagnostic label only). */
    std::string file;
    /** 1-based line of the offending construct. */
    int line = 0;
    /** Human-readable description, without the file:line prefix. */
    std::string message;

    /** "file:line: [rule] message" for terminal output. */
    std::string format() const;
};

/** Per-file knobs; defaults match a file under src/. */
struct Options
{
    /** Check coroutine parameter lists. */
    bool checkCoroutineParams = true;
    /**
     * Check by-reference captures on deferred/coroutine lambdas.
     * Disabled for tests/: a test body pumps the simulator with run()
     * inside the capturing scope, so its locals outlive every queued
     * callback and `[&]` is the idiomatic way to collect results. In
     * src/, a scheduled callback escapes the scheduling scope.
     */
    bool checkRefCaptures = true;
    /** Check for discarded / silently-detached coroutine starts. */
    bool checkDetachedCoroutines = true;
    /** Check for scalar awaited write()/read() calls inside loops. */
    bool checkScalarOpLoops = true;
    /** Check for banned nondeterminism sources. */
    bool checkNondeterminism = true;
    /** Check include style. */
    bool checkIncludes = true;
    /**
     * Require quoted includes to start with a known module directory.
     * Disabled for tests/, which include sibling fixtures directly.
     */
    bool requireModulePrefix = true;
    /**
     * Permit std::random_device: true only for sim/random.*, the one
     * sanctioned seeding point.
     */
    bool allowRandomDevice = false;
};

/**
 * Lint one translation unit.
 *
 * @param path Label used in findings (not opened; content comes in @p text).
 * @param text Full source text.
 * @param opts Per-file rule configuration.
 * @return All findings, in source order.
 */
std::vector<Finding> lintSource(std::string_view path, std::string_view text,
                                const Options &opts = {});

/**
 * Derive per-file options from a repo-relative path, applying the
 * location-based exemptions described on Options.
 */
Options optionsForPath(std::string_view relPath);

/** True when @p relPath is a file remora-lint should scan (.h/.cc/.cpp). */
bool shouldLint(std::string_view relPath);

} // namespace remora::lint
