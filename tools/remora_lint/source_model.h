/**
 * @file
 * The shared front end of remora-lint: one scrubbing + tokenizing pass
 * whose output every rule family consumes.
 *
 * Three passes share this model:
 *
 *  - the line-local rules in lint.cc (coroutine params, captures,
 *    detached starts, nondeterminism, include hygiene);
 *  - the flow-sensitive rules in flow.cc (CFG + dataflow over
 *    suspension points);
 *  - the whole-tree include-layer checker in layers.cc (which only
 *    needs the scrubbed text, so include paths survive scrubbing).
 *
 * Scrubbing blanks comment bodies and string/char-literal contents
 * in place (same length, newlines kept) so later passes never match
 * inside them, and harvests NOLINT/NOLINTNEXTLINE suppressions from
 * the comments before they vanish. Include-path strings survive
 * because the include rules need them.
 */
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint.h"

namespace remora::lint {

/** One lexed token of the scrubbed source. */
struct Token
{
    enum class Kind
    {
        kIdent,
        kPunct,
    };
    Kind kind;
    std::string text;
    int line;

    bool is(const char *s) const { return text == s; }
    bool ident() const { return kind == Kind::kIdent; }
};

/** Scrubbed text + harvested suppressions + token stream for one TU. */
struct SourceModel
{
    /** Source with comments and literal bodies blanked (same length). */
    std::string text;
    /** line -> suppressed check names; {"*"} means "all checks". */
    std::map<int, std::set<std::string>> lineSupp;
    /** Tokens of the scrubbed text, in source order. */
    std::vector<Token> tokens;
};

/** Build the model: scrub, harvest NOLINTs, tokenize. */
SourceModel buildSourceModel(std::string_view src);

/**
 * True when findings of @p rule are suppressed at @p line, either by
 * the rule's own name, a bare NOLINT, or a clang-tidy alias mapped to
 * the rule (so one comment silences both tools).
 */
bool suppressedAt(const SourceModel &model, int line, Rule rule);

/** True for identifier characters ([A-Za-z0-9_]). */
bool isIdentChar(char c);

} // namespace remora::lint
