#include "lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "flow.h"
#include "source_model.h"

namespace remora::lint {

namespace {

// ----------------------------------------------------------------------
// Line-local rule passes
// ----------------------------------------------------------------------

void
addFinding(std::vector<Finding> &out, const SourceModel &s, Rule rule,
           std::string_view path, int line, std::string msg)
{
    if (suppressedAt(s, line, rule)) {
        return;
    }
    out.push_back(Finding{rule, std::string(path), line, std::move(msg)});
}

/** Include-style checks, run on the scrubbed text line by line. */
void
checkIncludes(std::string_view path, const SourceModel &s,
              const Options &opts, std::vector<Finding> &out)
{
    std::istringstream ss(s.text);
    std::string rawLine;
    int line = 0;
    while (std::getline(ss, rawLine)) {
        ++line;
        size_t hash = rawLine.find_first_not_of(" \t");
        if (hash == std::string::npos || rawLine[hash] != '#') {
            continue;
        }
        size_t kw = rawLine.find_first_not_of(" \t", hash + 1);
        if (kw == std::string::npos ||
            rawLine.compare(kw, 7, "include") != 0) {
            continue;
        }
        size_t open = rawLine.find('"', kw + 7);
        if (open == std::string::npos) {
            continue; // angle includes are system headers; out of scope
        }
        size_t close = rawLine.find('"', open + 1);
        if (close == std::string::npos) {
            continue;
        }
        std::string inc = rawLine.substr(open + 1, close - open - 1);
        if (inc.rfind("../", 0) == 0 || inc.rfind("./", 0) == 0 ||
            inc.find("/../") != std::string::npos) {
            addFinding(out, s, Rule::kIncludeHygiene, path, line,
                       "relative include \"" + inc +
                           "\"; include from the source root instead");
        } else if (opts.requireModulePrefix &&
                   inc.find('/') == std::string::npos) {
            addFinding(out, s, Rule::kIncludeHygiene, path, line,
                       "include \"" + inc +
                           "\" lacks its module prefix (write "
                           "\"<module>/" +
                           inc + "\")");
        }
    }
}

/** Banned-nondeterminism pass over the token stream. */
void
checkNondeterminism(std::string_view path, const SourceModel &s,
                    const std::vector<Token> &toks, const Options &opts,
                    std::vector<Finding> &out)
{
    for (size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (!t.ident()) {
            continue;
        }
        // Member accesses (x.rand(), p->time()) are project API, not libc.
        bool member = i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->"));
        if (member) {
            continue;
        }
        auto nextIs = [&](size_t k, const char *txt) {
            return i + k < toks.size() && toks[i + k].is(txt);
        };
        if ((t.is("rand") || t.is("srand")) && nextIs(1, "(")) {
            addFinding(out, s, Rule::kNondeterminism, path, t.line,
                       t.text + "() is nondeterministic; use sim::Random");
        } else if (t.is("time") && nextIs(1, "(") &&
                   (nextIs(2, "nullptr") || nextIs(2, "NULL") ||
                    nextIs(2, "0"))) {
            addFinding(out, s, Rule::kNondeterminism, path, t.line,
                       "time(" + toks[i + 2].text +
                           ") reads the wall clock; use Simulator::now()");
        } else if (t.is("system_clock") || t.is("high_resolution_clock")) {
            addFinding(out, s, Rule::kNondeterminism, path, t.line,
                       "std::chrono::" + t.text +
                           " reads the wall clock; use Simulator::now()");
        } else if (t.is("gettimeofday") || t.is("clock_gettime")) {
            addFinding(out, s, Rule::kNondeterminism, path, t.line,
                       t.text + "() reads the wall clock; use "
                                "Simulator::now()");
        } else if (t.is("random_device") && !opts.allowRandomDevice) {
            addFinding(out, s, Rule::kNondeterminism, path, t.line,
                       "std::random_device is nondeterministic; seed "
                       "sim::Random explicitly (sanctioned only in "
                       "sim/random)");
        }
    }
}

/**
 * One parameter's token span, classified. Depth tracking: parens and
 * brackets nest normally; '<' opens an angle scope, '>' closes one, and
 * '>>' closes two when an angle scope is open (otherwise it is a shift
 * in a default argument and ignored, as is '<<').
 */
struct ParamScan
{
    bool topLevelRef = false;
    bool topLevelPtr = false;
    bool stringView = false;
    int firstLine = 0;
    std::string text;
};

/** Scan params between '(' at @p open and its match; return one entry per
 *  comma-separated parameter and the index of the closing ')'. */
std::vector<ParamScan>
scanParams(const std::vector<Token> &toks, size_t open, size_t *closeOut)
{
    std::vector<ParamScan> params;
    ParamScan cur;
    int paren = 0;
    int angle = 0;
    int bracket = 0;
    size_t i = open;
    for (; i < toks.size(); ++i) {
        const Token &t = toks[i];
        bool top = paren == 1 && angle == 0 && bracket == 0;
        if (t.is("(")) {
            ++paren;
            if (paren == 1) {
                continue;
            }
        } else if (t.is(")")) {
            --paren;
            if (paren == 0) {
                break;
            }
        } else if (t.is("[")) {
            ++bracket;
        } else if (t.is("]")) {
            --bracket;
        } else if (t.is("<")) {
            ++angle;
        } else if (t.is(">") && angle > 0) {
            --angle;
        } else if (t.is(">>") && angle > 0) {
            angle -= 2;
            angle = angle < 0 ? 0 : angle;
        } else if (t.is(",") && top) {
            params.push_back(cur);
            cur = ParamScan{};
            continue;
        }
        if (cur.firstLine == 0) {
            cur.firstLine = t.line;
        }
        if (top && (t.is("&") || t.is("&&"))) {
            cur.topLevelRef = true;
        }
        if (top && t.is("*")) {
            cur.topLevelPtr = true;
        }
        if (t.ident() && t.is("string_view")) {
            cur.stringView = true;
        }
        if (t.ident() || t.is("::") || t.is("&") || t.is("&&") ||
            t.is("*") || t.is("<") || t.is(">") || t.is(">>")) {
            if (!cur.text.empty() && t.ident() &&
                isIdentChar(cur.text.back())) {
                cur.text += ' ';
            }
            cur.text += t.text;
        }
    }
    if (cur.firstLine != 0) {
        params.push_back(cur);
    }
    if (closeOut != nullptr) {
        *closeOut = i;
    }
    return params;
}

/**
 * The coroutine-parameter pass.
 *
 * Recognizes two shapes around every `Task<...>` return type:
 *
 *   [qual ::] Task < args > name [:: name]* ( params )     named function
 *   ( params ) [mutable noexcept]* -> [qual ::] Task < args >   lambda
 *
 * `std::function<Task<...>( ... )>` signature types — '(' directly after
 * the closing '>' — are types, not coroutine declarations, and skipped.
 */
void
checkCoroutineParams(std::string_view path, const SourceModel &s,
                     const std::vector<Token> &toks,
                     std::vector<Finding> &out)
{
    for (size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].ident() || !toks[i].is("Task") ||
            i + 1 >= toks.size() || !toks[i + 1].is("<")) {
            continue;
        }
        // Skip the template machinery's own mentions (template<> class
        // Task; using/typedef aliases are still scanned downstream).
        if (i > 0 && (toks[i - 1].is("class") || toks[i - 1].is("struct"))) {
            continue;
        }
        // Skip the Task<...> template argument list.
        size_t j = i + 2;
        int depth = 1;
        while (j < toks.size() && depth > 0) {
            if (toks[j].is("<")) {
                ++depth;
            } else if (toks[j].is(">")) {
                --depth;
            } else if (toks[j].is(">>")) {
                depth -= 2;
            }
            ++j;
        }
        if (j >= toks.size()) {
            continue;
        }

        bool isLambda = false;
        std::string declName;
        std::vector<ParamScan> params;
        int declLine = toks[i].line;

        // Lambda shape: walk back over the return-type qualifiers to
        // `->`, then over the specifier list to ')', then match '('.
        size_t back = i;
        while (back >= 2 && toks[back - 1].is("::") &&
               toks[back - 2].ident()) {
            back -= 2;
        }
        if (back >= 1 && toks[back - 1].is("->")) {
            size_t r = back - 1;
            while (r > 0 && toks[r - 1].ident()) {
                --r; // mutable / noexcept / constexpr
            }
            if (r > 0 && toks[r - 1].is(")")) {
                // Walk back to the matching '('.
                int d = 0;
                size_t p = r - 1;
                while (true) {
                    if (toks[p].is(")")) {
                        ++d;
                    } else if (toks[p].is("(")) {
                        --d;
                        if (d == 0) {
                            break;
                        }
                    }
                    if (p == 0) {
                        break;
                    }
                    --p;
                }
                if (d == 0 && toks[p].is("(")) {
                    isLambda = true;
                    declName = "lambda coroutine";
                    params = scanParams(toks, p, nullptr);
                    declLine = toks[p].line;
                }
            }
        }

        if (!isLambda) {
            // Named-function shape: identifier chain then '('.
            size_t k = j;
            while (k + 1 < toks.size() && toks[k].ident() &&
                   toks[k + 1].is("::")) {
                declName += toks[k].text + "::";
                k += 2;
            }
            if (k >= toks.size() || !toks[k].ident()) {
                continue; // function type, alias, or expression
            }
            declName += toks[k].text;
            if (declName == "operator" || toks[k].is("operator")) {
                continue;
            }
            if (k + 1 >= toks.size() || !toks[k + 1].is("(")) {
                continue; // variable of Task type, using-alias, etc.
            }
            params = scanParams(toks, k + 1, nullptr);
            declLine = toks[k].line;
        }

        for (const ParamScan &p : params) {
            int line = p.firstLine != 0 ? p.firstLine : declLine;
            if (p.topLevelRef || p.stringView) {
                const char *why =
                    p.stringView
                        ? "string_view views caller storage that can die at "
                          "the first suspension point"
                        : "references bind caller temporaries that die at "
                          "the first suspension point";
                if (!suppressedAt(s, declLine, Rule::kCoroutineRefParam)) {
                    addFinding(out, s, Rule::kCoroutineRefParam, path, line,
                               "coroutine " + declName + " parameter '" +
                                   p.text + "' is not safe to suspend over: " +
                                   why + "; pass by value");
                }
            } else if (p.topLevelPtr && !isLambda) {
                if (!suppressedAt(s, declLine, Rule::kCoroutinePtrParam)) {
                    addFinding(out, s, Rule::kCoroutinePtrParam, path, line,
                               "coroutine " + declName +
                                   " takes raw pointer '" + p.text +
                                   "'; ensure the pointee outlives every "
                                   "suspension (advisory)");
                }
            }
        }
    }
}

/**
 * True when the '[' at @p idx opens a lambda capture list rather than a
 * subscript: subscripts follow a value expression (identifier, ')', ']'),
 * lambda introducers follow punctuation that starts an expression.
 */
bool
isLambdaIntro(const std::vector<Token> &toks, size_t idx)
{
    if (!toks[idx].is("[")) {
        return false;
    }
    if (idx == 0) {
        return true;
    }
    const Token &p = toks[idx - 1];
    return p.is("(") || p.is(",") || p.is("=") || p.is("{") || p.is(";") ||
           p.is("return") || p.is("&&") || p.is("||") || p.is("?") ||
           p.is(":");
}

/**
 * Scan the capture list opened by '[' at @p open. Returns the first
 * by-reference capture ("&", "&x") or empty when all captures are by
 * value; `[p = &obj]` init-captures of pointers do not count. Sets
 * @p closeOut to the matching ']'.
 */
std::string
refCaptureIn(const std::vector<Token> &toks, size_t open, size_t *closeOut)
{
    std::string found;
    int depth = 0;
    size_t k = open;
    for (; k < toks.size(); ++k) {
        if (toks[k].is("[")) {
            ++depth;
        } else if (toks[k].is("]")) {
            --depth;
            if (depth == 0) {
                break;
            }
        } else if (depth == 1 && found.empty() && toks[k].is("&") &&
                   (toks[k - 1].is("[") || toks[k - 1].is(","))) {
            found = "&";
            if (k + 1 < toks.size() && toks[k + 1].ident()) {
                found += toks[k + 1].text;
            }
        }
    }
    if (closeOut != nullptr) {
        *closeOut = k;
    }
    return found;
}

/**
 * The deferred-lambda capture pass (kRefCaptureDeferred).
 *
 * Two shapes of lambda outlive the scope that created them, so their
 * by-reference captures dangle exactly like reference coroutine
 * parameters:
 *
 *  - arguments to `Simulator::schedule(...)` / `scheduleAt(...)`: the
 *    callback runs from the event queue after the caller returned;
 *  - coroutine lambdas (`[...](...) -> Task<...>`): the frame suspends
 *    past the enclosing scope (the spawned-task case).
 */
void
checkRefCaptures(std::string_view path, const SourceModel &s,
                 const std::vector<Token> &toks, std::vector<Finding> &out)
{
    // Shape 1: lambdas in schedule/scheduleAt argument lists.
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].ident() ||
            (!toks[i].is("schedule") && !toks[i].is("scheduleAt")) ||
            !toks[i + 1].is("(")) {
            continue;
        }
        int paren = 0;
        for (size_t k = i + 1; k < toks.size(); ++k) {
            if (toks[k].is("(")) {
                ++paren;
            } else if (toks[k].is(")")) {
                if (--paren == 0) {
                    break;
                }
            } else if (isLambdaIntro(toks, k)) {
                size_t close = k;
                std::string ref = refCaptureIn(toks, k, &close);
                if (!ref.empty()) {
                    addFinding(out, s, Rule::kRefCaptureDeferred, path,
                               toks[k].line,
                               "lambda handed to Simulator::" + toks[i].text +
                                   " captures '" + ref +
                                   "' by reference; the callback runs after "
                                   "the enclosing scope unwound — capture by "
                                   "value");
                }
                k = close;
            }
        }
    }

    // Shape 2: coroutine lambdas — '[caps] ( params ) specifiers -> Task<'.
    for (size_t i = 0; i < toks.size(); ++i) {
        if (!isLambdaIntro(toks, i)) {
            continue;
        }
        size_t close = i;
        std::string ref = refCaptureIn(toks, i, &close);
        if (ref.empty() || close + 1 >= toks.size() ||
            !toks[close + 1].is("(")) {
            continue;
        }
        // Match the parameter list's ')'.
        int paren = 0;
        size_t k = close + 1;
        for (; k < toks.size(); ++k) {
            if (toks[k].is("(")) {
                ++paren;
            } else if (toks[k].is(")")) {
                if (--paren == 0) {
                    break;
                }
            }
        }
        // Skip specifiers (mutable/noexcept/constexpr), expect '->'.
        size_t r = k + 1;
        while (r < toks.size() && toks[r].ident() && !toks[r].is("Task")) {
            ++r;
        }
        if (r >= toks.size() || !toks[r].is("->")) {
            continue;
        }
        // Return type: optionally qualified Task<...>.
        size_t q = r + 1;
        while (q + 1 < toks.size() && toks[q].ident() &&
               toks[q + 1].is("::")) {
            q += 2;
        }
        if (q + 1 < toks.size() && toks[q].is("Task") &&
            toks[q + 1].is("<")) {
            addFinding(out, s, Rule::kRefCaptureDeferred, path, toks[i].line,
                       "coroutine lambda captures '" + ref +
                           "' by reference; the frame suspends past the "
                           "enclosing scope — capture by value or pass as "
                           "a parameter");
        }
    }
}

/**
 * The detached-coroutine pass (kDetachedCoroutine family).
 *
 * Task<...> is eager: calling a coroutine starts it, and discarding the
 * returned Task detaches the running frame via the destructor with
 * nothing owning it. That is sometimes intended (server loops), but the
 * intent must be visible: `start().detach();` reads as fire-and-forget,
 * a bare `start();` or `(void)start();` reads as a forgotten await.
 *
 * Phase A collects the names of every Task-returning function declared
 * in this translation unit (the same declarator shape the
 * coroutine-param pass recognizes). Phase B classifies each
 * *unqualified* call of a collected name — member calls through `.` or
 * `->` are skipped, since another class may reuse the name with a
 * non-coroutine signature:
 *
 *  - `name(...);` as a whole statement, or `(void)name(...);`  -> error
 *  - `name(...).detach();`                                     -> advisory
 *  - awaited, assigned, or passed as an argument                -> clean
 */
void
checkDetachedCoroutines(std::string_view path, const SourceModel &s,
                        const std::vector<Token> &toks,
                        std::vector<Finding> &out)
{
    // Phase A: TU-local coroutine names (last declarator identifier of
    // each `Task<...> [chain::]name (` declaration or definition).
    std::set<std::string> coros;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].is("Task") || !toks[i].ident() ||
            !toks[i + 1].is("<")) {
            continue;
        }
        if (i > 0 && (toks[i - 1].is("class") || toks[i - 1].is("struct"))) {
            continue;
        }
        size_t j = i + 2;
        int depth = 1;
        while (j < toks.size() && depth > 0) {
            if (toks[j].is("<")) {
                ++depth;
            } else if (toks[j].is(">")) {
                --depth;
            } else if (toks[j].is(">>")) {
                depth -= 2;
            }
            ++j;
        }
        size_t k = j;
        while (k + 1 < toks.size() && toks[k].ident() &&
               toks[k + 1].is("::")) {
            k += 2;
        }
        if (k + 1 < toks.size() && toks[k].ident() && toks[k + 1].is("(") &&
            !toks[k].is("operator")) {
            coros.insert(toks[k].text);
        }
    }
    if (coros.empty()) {
        return;
    }

    // Phase B: classify call sites.
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].ident() || coros.count(toks[i].text) == 0 ||
            !toks[i + 1].is("(")) {
            continue;
        }
        // Walk back over namespace/class qualification (`ns::name`).
        size_t start = i;
        while (start >= 2 && toks[start - 1].is("::") &&
               toks[start - 2].ident()) {
            start -= 2;
        }
        const Token *prev = start > 0 ? &toks[start - 1] : nullptr;
        // A declaration, not a call: the return type's '>' (or a type
        // name) directly precedes the declarator.
        if (prev != nullptr && (prev->is(">") || prev->is(">>"))) {
            continue;
        }
        // Member call on some object: its class may reuse the name with
        // a non-coroutine signature, so only the detach advisory below
        // could apply — and detached member temporaries are spelled
        // through the same unqualified shape everywhere in this tree.
        if (prev != nullptr && (prev->is(".") || prev->is("->"))) {
            continue;
        }
        // Find the matching ')'.
        int paren = 0;
        size_t close = i + 1;
        for (; close < toks.size(); ++close) {
            if (toks[close].is("(")) {
                ++paren;
            } else if (toks[close].is(")") && --paren == 0) {
                break;
            }
        }
        if (close + 1 >= toks.size()) {
            continue;
        }
        if (toks[close + 1].is(".") && close + 2 < toks.size() &&
            toks[close + 2].is("detach")) {
            addFinding(out, s, Rule::kDetachedCoroutineDetach, path,
                       toks[i].line,
                       "coroutine " + toks[i].text +
                           "() detached at start; fire-and-forget intent "
                           "noted (advisory)");
            continue;
        }
        bool stmtStart = prev == nullptr || prev->is(";") || prev->is("{") ||
                         prev->is("}");
        bool voidCast = start >= 3 && toks[start - 1].is(")") &&
                        toks[start - 2].is("void") && toks[start - 3].is("(");
        if ((stmtStart || voidCast) && toks[close + 1].is(";")) {
            addFinding(out, s, Rule::kDetachedCoroutine, path, toks[i].line,
                       "coroutine " + toks[i].text +
                           "() started and discarded: the eager frame "
                           "detaches silently — co_await it, keep the "
                           "Task, or write .detach() to make "
                           "fire-and-forget explicit");
        }
    }
}

/**
 * The scalar-op-in-loop pass (kScalarOpLoop, advisory).
 *
 * A `co_await <obj>.write(...)` / `<obj>->read(...)` inside a `for` or
 * `while` body pays one trap + validation + wire frame per iteration;
 * when the iterations target the same node, a vectored
 * `writev()`/`readv()` batch pays them once. Only awaited calls are
 * considered — synchronous `space().write(...)` local-memory accesses
 * return a plain Status and never match. Each await site is reported
 * once even when loops nest.
 */
void
checkScalarOpLoops(std::string_view path, const SourceModel &s,
                   const std::vector<Token> &toks, std::vector<Finding> &out)
{
    std::set<size_t> reported; // token index of the co_await
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].ident() ||
            (!toks[i].is("for") && !toks[i].is("while")) ||
            !toks[i + 1].is("(")) {
            continue;
        }
        // Match the loop header's closing ')'.
        int paren = 0;
        size_t k = i + 1;
        for (; k < toks.size(); ++k) {
            if (toks[k].is("(")) {
                ++paren;
            } else if (toks[k].is(")") && --paren == 0) {
                break;
            }
        }
        if (k + 1 >= toks.size()) {
            continue;
        }
        // Body span: braced block, or single statement up to ';'.
        size_t body = k + 1;
        size_t bodyEnd = body;
        if (toks[body].is("{")) {
            int brace = 0;
            for (; bodyEnd < toks.size(); ++bodyEnd) {
                if (toks[bodyEnd].is("{")) {
                    ++brace;
                } else if (toks[bodyEnd].is("}") && --brace == 0) {
                    break;
                }
            }
        } else {
            while (bodyEnd < toks.size() && !toks[bodyEnd].is(";")) {
                ++bodyEnd;
            }
        }
        for (size_t t = body; t < bodyEnd; ++t) {
            if (!toks[t].is("co_await") || reported.count(t) != 0) {
                continue;
            }
            // Scan the awaited expression (up to the statement end) for
            // a member call of write( or read(.
            for (size_t u = t + 1; u + 2 < bodyEnd; ++u) {
                if (toks[u].is(";")) {
                    break;
                }
                if ((toks[u].is(".") || toks[u].is("->")) &&
                    toks[u + 1].ident() &&
                    (toks[u + 1].is("write") || toks[u + 1].is("read")) &&
                    toks[u + 2].is("(")) {
                    bool isWrite = toks[u + 1].is("write");
                    reported.insert(t);
                    addFinding(out, s, Rule::kScalarOpLoop, path,
                               toks[t].line,
                               std::string("scalar ") + toks[u + 1].text +
                                   "() awaited inside a loop: each "
                                   "iteration pays a full trap and frame; "
                                   "consider batching with " +
                                   (isWrite ? "writev()" : "readv()") +
                                   " (advisory)");
                    break;
                }
            }
        }
    }
}

/** Minimal JSON string escaping (control chars, quotes, backslash). */
std::string
jsonEscape(std::string_view in)
{
    std::string out;
    out.reserve(in.size() + 8);
    for (char c : in) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

// ----------------------------------------------------------------------
// Rule metadata
//
// The switches below have no default case and no fallback return:
// remora_lint_core builds with -Werror=switch -Werror=return-type, so
// adding a Rule enumerator without wiring its name, severity, and
// description here is a compile error.
// ----------------------------------------------------------------------

const char *
ruleName(Rule rule)
{
    switch (rule) {
    case Rule::kCoroutineRefParam:
        return "remora-coroutine-ref-param";
    case Rule::kCoroutinePtrParam:
        return "remora-coroutine-ptr-param";
    case Rule::kRefCaptureDeferred:
        return "remora-ref-capture-deferred";
    case Rule::kDetachedCoroutine:
    case Rule::kDetachedCoroutineDetach:
        return "remora-detached-coroutine";
    case Rule::kScalarOpLoop:
        return "remora-scalar-op-loop";
    case Rule::kNondeterminism:
        return "remora-nondeterminism";
    case Rule::kIncludeHygiene:
        return "remora-include-hygiene";
    case Rule::kLockAcrossSuspension:
        return "remora-lock-across-suspension";
    case Rule::kUseAfterSuspension:
        return "remora-use-after-suspension";
    case Rule::kReleaseOnAllPaths:
        return "remora-release-on-all-paths";
    case Rule::kUncheckedVectorStatus:
        return "remora-unchecked-vector-status";
    case Rule::kIncludeLayer:
        return "remora-include-layer";
    }
    // Unreachable: the switch is exhaustive (-Werror=switch) and every
    // case returns (-Werror=return-type).
    __builtin_unreachable();
}

bool
ruleIsError(Rule rule)
{
    switch (rule) {
    case Rule::kCoroutineRefParam:
    case Rule::kRefCaptureDeferred:
    case Rule::kDetachedCoroutine:
    case Rule::kNondeterminism:
    case Rule::kIncludeHygiene:
    case Rule::kLockAcrossSuspension:
    case Rule::kUseAfterSuspension:
    case Rule::kIncludeLayer:
        return true;
    case Rule::kCoroutinePtrParam:
    case Rule::kDetachedCoroutineDetach:
    case Rule::kScalarOpLoop:
    case Rule::kReleaseOnAllPaths:
    case Rule::kUncheckedVectorStatus:
        return false;
    }
    __builtin_unreachable();
}

const char *
ruleDescription(Rule rule)
{
    switch (rule) {
    case Rule::kCoroutineRefParam:
        return "coroutine takes a reference/string_view parameter that "
               "dangles at the first suspension point";
    case Rule::kCoroutinePtrParam:
        return "named coroutine takes a raw pointer; pointee must outlive "
               "every suspension";
    case Rule::kRefCaptureDeferred:
        return "[&] capture on a deferred or coroutine lambda outlives its "
               "scope";
    case Rule::kDetachedCoroutine:
        return "eager Task started and silently discarded; spell "
               "fire-and-forget as .detach()";
    case Rule::kDetachedCoroutineDetach:
        return "sanctioned .detach() fire-and-forget site, kept auditable";
    case Rule::kScalarOpLoop:
        return "scalar write()/read() awaited per loop iteration; consider "
               "writev()/readv() batching";
    case Rule::kNondeterminism:
        return "wall-clock or platform randomness breaks bit-identical "
               "replay";
    case Rule::kIncludeHygiene:
        return "relative or module-prefix-less project include";
    case Rule::kLockAcrossSuspension:
        return "lock still held at a suspension that acquires another lock "
               "(cross-order deadlock), or thread guard live at co_await";
    case Rule::kUseAfterSuspension:
        return "pointer/reference/view into borrowed state used after a "
               "suspension point that may invalidate it";
    case Rule::kReleaseOnAllPaths:
        return "acquire/release or begin/end pair where an early-exit path "
               "skips the release";
    case Rule::kUncheckedVectorStatus:
        return "vectored op result whose per-sub-op statuses are never "
               "inspected";
    case Rule::kIncludeLayer:
        return "include edge climbs the module layer diagram upward, or "
               "the include DAG has a cycle";
    }
    __builtin_unreachable();
}

bool
ruleIsFlow(Rule rule)
{
    switch (rule) {
    case Rule::kLockAcrossSuspension:
    case Rule::kUseAfterSuspension:
    case Rule::kReleaseOnAllPaths:
    case Rule::kUncheckedVectorStatus:
        return true;
    case Rule::kCoroutineRefParam:
    case Rule::kCoroutinePtrParam:
    case Rule::kRefCaptureDeferred:
    case Rule::kDetachedCoroutine:
    case Rule::kDetachedCoroutineDetach:
    case Rule::kScalarOpLoop:
    case Rule::kNondeterminism:
    case Rule::kIncludeHygiene:
    case Rule::kIncludeLayer:
        return false;
    }
    __builtin_unreachable();
}

std::string
Finding::format() const
{
    std::ostringstream ss;
    ss << file << ":" << line << ": [" << ruleName(rule) << "] " << message;
    return ss.str();
}

std::string
findingsToJson(const std::vector<Finding> &findings)
{
    std::ostringstream ss;
    ss << "[";
    bool first = true;
    for (const Finding &f : findings) {
        ss << (first ? "" : ",") << "\n  {\"file\":\"" << jsonEscape(f.file)
           << "\",\"line\":" << f.line << ",\"rule\":\"" << ruleName(f.rule)
           << "\",\"severity\":\""
           << (ruleIsError(f.rule) ? "error" : "advisory")
           << "\",\"message\":\"" << jsonEscape(f.message) << "\"}";
        first = false;
    }
    ss << (first ? "]" : "\n]");
    return ss.str();
}

// ----------------------------------------------------------------------
// Public interface
// ----------------------------------------------------------------------

std::vector<Finding>
lintSource(std::string_view path, std::string_view text, const Options &opts)
{
    std::vector<Finding> out;
    SourceModel s = buildSourceModel(text);
    if (opts.checkIncludes) {
        checkIncludes(path, s, opts, out);
    }
    const std::vector<Token> &toks = s.tokens;
    if (opts.checkNondeterminism) {
        checkNondeterminism(path, s, toks, opts, out);
    }
    if (opts.checkCoroutineParams) {
        checkCoroutineParams(path, s, toks, out);
    }
    if (opts.checkRefCaptures) {
        checkRefCaptures(path, s, toks, out);
    }
    if (opts.checkDetachedCoroutines) {
        checkDetachedCoroutines(path, s, toks, out);
    }
    if (opts.checkScalarOpLoops) {
        checkScalarOpLoops(path, s, toks, out);
    }
    if (opts.checkFlowRules) {
        checkFlowRules(path, s, opts, out);
    }
    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  return a.line < b.line;
              });
    return out;
}

Options
optionsForPath(std::string_view relPath)
{
    Options opts;
    std::string p(relPath);
    std::replace(p.begin(), p.end(), '\\', '/');
    bool testLike = p.rfind("tests/", 0) == 0 ||
                    p.find("/tests/") != std::string::npos;
    bool driverLike = p.rfind("tools/", 0) == 0 ||
                      p.rfind("bench/", 0) == 0;
    if (testLike || driverLike) {
        // Tests include sibling fixtures ("cluster_fixture.h") and the
        // tools/benches their own local headers ("lint.h",
        // "bench_common.h") directly.
        opts.requireModulePrefix = false;
        // Test bodies and bench/tool drivers pump the simulator with
        // run() inside the capturing scope, so their locals outlive
        // every queued callback and `[&]` is the idiomatic way to
        // collect results. In src/, a scheduled callback escapes the
        // scheduling scope.
        opts.checkRefCaptures = false;
    }
    if (p.find("sim/random.") != std::string::npos) {
        opts.allowRandomDevice = true;
    }
    return opts;
}

bool
shouldLint(std::string_view relPath)
{
    auto ends = [&](const char *suffix) {
        std::string_view sv(suffix);
        return relPath.size() >= sv.size() &&
               relPath.compare(relPath.size() - sv.size(), sv.size(), sv) ==
                   0;
    };
    return ends(".h") || ends(".cc") || ends(".cpp") || ends(".hpp");
}

} // namespace remora::lint
