#include "layers.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "source_model.h"

namespace remora::lint {

namespace {

/** Module of a repo-relative path, or "" when not under src/. */
std::string
moduleOf(std::string_view relPath)
{
    std::string p(relPath);
    std::replace(p.begin(), p.end(), '\\', '/');
    if (p.rfind("src/", 0) != 0) {
        return "";
    }
    size_t slash = p.find('/', 4);
    if (slash == std::string::npos) {
        return "";
    }
    return p.substr(4, slash - 4);
}

struct IncludeEdge
{
    std::string target; // src-relative include path ("sim/task.h")
    int line = 0;
    bool suppressed = false;
};

/** Quoted project includes of one file, with NOLINT state resolved. */
std::vector<IncludeEdge>
projectIncludes(const std::string &text)
{
    SourceModel model = buildSourceModel(text);
    std::vector<IncludeEdge> out;
    std::istringstream ss(model.text);
    std::string lineText;
    int line = 0;
    while (std::getline(ss, lineText)) {
        ++line;
        size_t hash = lineText.find_first_not_of(" \t");
        if (hash == std::string::npos || lineText[hash] != '#') {
            continue;
        }
        size_t kw = lineText.find_first_not_of(" \t", hash + 1);
        if (kw == std::string::npos ||
            lineText.compare(kw, 7, "include") != 0) {
            continue;
        }
        size_t open = lineText.find('"', kw + 7);
        if (open == std::string::npos) {
            continue; // angle include: system header
        }
        size_t close = lineText.find('"', open + 1);
        if (close == std::string::npos) {
            continue;
        }
        IncludeEdge e;
        e.target = lineText.substr(open + 1, close - open - 1);
        e.line = line;
        e.suppressed = suppressedAt(model, line, Rule::kIncludeLayer);
        out.push_back(e);
    }
    return out;
}

} // namespace

int
layerRank(std::string_view module)
{
    static const std::map<std::string, int, std::less<>> kRanks = {
        {"util", 0}, {"sim", 1},   {"obs", 2},  {"net", 3},
        {"mem", 4},  {"rmem", 5},  {"rpc", 6},  {"names", 7},
        {"dfs", 7},  {"trace", 8},
    };
    auto it = kRanks.find(module);
    return it == kRanks.end() ? -1 : it->second;
}

std::vector<Finding>
checkIncludeLayers(
    const std::vector<std::pair<std::string, std::string>> &files)
{
    std::vector<Finding> out;

    // file (src-relative, e.g. "sim/task.h") -> included src files.
    std::map<std::string, std::vector<std::string>> graph;

    for (const auto &[relPath, text] : files) {
        std::string mod = moduleOf(relPath);
        if (mod.empty()) {
            continue; // application layer: include anything
        }
        int rank = layerRank(mod);
        std::string srcRel(relPath.substr(4)); // strip "src/"
        auto &edges = graph[srcRel];
        for (const IncludeEdge &e : projectIncludes(text)) {
            size_t slash = e.target.find('/');
            if (slash == std::string::npos ||
                e.target.rfind("../", 0) == 0 ||
                e.target.rfind("./", 0) == 0) {
                continue; // unprefixed/relative: include-hygiene's problem
            }
            std::string targetMod = e.target.substr(0, slash);
            int targetRank = layerRank(targetMod);
            if (targetRank < 0) {
                if (!e.suppressed) {
                    out.push_back(Finding{
                        Rule::kIncludeLayer, relPath, e.line,
                        "include \"" + e.target +
                            "\" names module '" + targetMod +
                            "' which is not in the layer diagram — add "
                            "it to layerRank() with a deliberate rank"});
                }
                continue;
            }
            edges.push_back(e.target);
            if (targetMod != mod && !(targetRank < rank) &&
                !e.suppressed) {
                out.push_back(Finding{
                    Rule::kIncludeLayer, relPath, e.line,
                    "include \"" + e.target + "\" climbs the layer "
                    "diagram: " + mod + " (rank " +
                        std::to_string(rank) + ") may only include "
                        "modules below it, but " + targetMod +
                        " has rank " + std::to_string(targetRank)});
            }
        }
    }

    // Cycle detection over the file-level graph (colors: 0 unvisited,
    // 1 on stack, 2 done). Only edges to files we actually scanned
    // participate; an include of a nonexistent file is a build error,
    // not ours.
    std::map<std::string, int> color;
    std::vector<std::string> stack;
    std::set<std::string> cycleReported;

    struct Dfs
    {
        const std::map<std::string, std::vector<std::string>> &graph;
        std::map<std::string, int> &color;
        std::vector<std::string> &stack;
        std::set<std::string> &cycleReported;
        std::vector<Finding> &out;

        void
        visit(const std::string &file)
        {
            color[file] = 1;
            stack.push_back(file);
            auto it = graph.find(file);
            if (it != graph.end()) {
                for (const std::string &next : it->second) {
                    if (graph.find(next) == graph.end()) {
                        continue;
                    }
                    int c = color.count(next) != 0 ? color[next] : 0;
                    if (c == 0) {
                        visit(next);
                    } else if (c == 1) {
                        // Found a cycle: stack from `next` to `file`.
                        auto start = std::find(stack.begin(), stack.end(),
                                               next);
                        std::string desc;
                        std::string first = next;
                        for (auto s = start; s != stack.end(); ++s) {
                            desc += *s + " -> ";
                            first = std::min(first, *s);
                        }
                        desc += next;
                        if (cycleReported.insert(first).second) {
                            out.push_back(Finding{
                                Rule::kIncludeLayer, "src/" + first, 1,
                                "include cycle: " + desc});
                        }
                    }
                }
            }
            stack.pop_back();
            color[file] = 2;
        }
    } dfs{graph, color, stack, cycleReported, out};

    for (const auto &[file, edges] : graph) {
        (void)edges;
        if (color.count(file) == 0 || color[file] == 0) {
            dfs.visit(file);
        }
    }

    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  return a.file != b.file ? a.file < b.file
                                          : a.line < b.line;
              });
    return out;
}

} // namespace remora::lint
