/**
 * @file
 * bench_diff: compare fresh bench reports against checked-in baselines.
 *
 *     bench_diff [options] <baseline_dir> <candidate_dir>
 *
 *       --tol PCT          default two-sided tolerance (default 5)
 *       --tol-metric N=PCT per-metric override (repeatable; N is the
 *                          full dotted metric name)
 *       --dir-metric N=D   per-metric direction hint (repeatable; D is
 *                          "up" for higher-is-better or "down" for
 *                          lower-is-better — the metric then fails
 *                          only on moves in the bad direction)
 *       --only NAME        compare only BENCH_<NAME>.json
 *
 * Every BENCH_*.json in the baseline directory must exist in the
 * candidate directory, parse, carry every baseline metric within
 * tolerance, and keep every baseline check passing. Exit status is the
 * number of failing reports (clamped to 1), so scripts/check.sh can
 * gate on it directly. Candidate-only reports and metrics are noted
 * but never fail — refreshing bench/baselines/ is how they land.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_diff.h"

namespace fs = std::filesystem;

namespace {

bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path);
    if (!in) {
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: bench_diff [--tol PCT] [--tol-metric NAME=PCT]... "
                 "[--dir-metric NAME=up|down]... [--only NAME] "
                 "<baseline_dir> <candidate_dir>\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    remora::obs::BenchDiffOptions opts;
    std::string only;
    std::vector<std::string> dirs;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) {
            opts.defaultTolerancePct = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--tol-metric") == 0 &&
                   i + 1 < argc) {
            std::string arg = argv[++i];
            size_t eq = arg.find('=');
            if (eq == std::string::npos) {
                return usage();
            }
            opts.tolerances[arg.substr(0, eq)] =
                std::atof(arg.c_str() + eq + 1);
        } else if (std::strcmp(argv[i], "--dir-metric") == 0 &&
                   i + 1 < argc) {
            std::string arg = argv[++i];
            size_t eq = arg.find('=');
            if (eq == std::string::npos) {
                return usage();
            }
            std::string dir = arg.substr(eq + 1);
            if (dir != "up" && dir != "down") {
                return usage();
            }
            opts.directions[arg.substr(0, eq)] = dir == "up" ? 1 : -1;
        } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
            only = argv[++i];
        } else if (argv[i][0] == '-') {
            return usage();
        } else {
            dirs.push_back(argv[i]);
        }
    }
    if (dirs.size() != 2) {
        return usage();
    }
    fs::path baseDir(dirs[0]), candDir(dirs[1]);
    if (!fs::is_directory(baseDir)) {
        std::fprintf(stderr, "bench_diff: no baseline directory %s\n",
                     baseDir.string().c_str());
        return 2;
    }

    std::vector<fs::path> baselines;
    for (const auto &entry : fs::directory_iterator(baseDir)) {
        std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 &&
            entry.path().extension() == ".json") {
            if (!only.empty() && name != "BENCH_" + only + ".json") {
                continue;
            }
            baselines.push_back(entry.path());
        }
    }
    std::sort(baselines.begin(), baselines.end());
    if (baselines.empty()) {
        std::fprintf(stderr, "bench_diff: no BENCH_*.json baselines in %s\n",
                     baseDir.string().c_str());
        return 2;
    }

    int failed = 0;
    for (const auto &basePath : baselines) {
        std::string name = basePath.filename().string();
        fs::path candPath = candDir / name;
        std::string baseText, candText;
        if (!readFile(basePath, baseText)) {
            std::printf("%s\n  FAIL  cannot read baseline\n", name.c_str());
            ++failed;
            continue;
        }
        if (!readFile(candPath, candText)) {
            std::printf("%s\n  FAIL  candidate report missing (%s)\n",
                        name.c_str(), candPath.string().c_str());
            ++failed;
            continue;
        }
        auto result =
            remora::obs::diffReportText(baseText, candText, opts);
        std::printf("%s\n%s", name.c_str(), result.render().c_str());
        if (!result.pass()) {
            ++failed;
        }
    }
    if (failed > 0) {
        std::printf("bench_diff: %d of %zu report(s) FAILED\n", failed,
                    baselines.size());
        return 1;
    }
    std::printf("bench_diff: all %zu report(s) within tolerance\n",
                baselines.size());
    return 0;
}
