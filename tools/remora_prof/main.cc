/**
 * @file
 * remora_prof: end-to-end critical-path profile of the transfer stack.
 *
 * Builds the paper's two-node testbed in-process, turns the trace
 * recorder on, drives a mixed workload (rmem WRITE/READ/CAS rounds, a
 * kernel-thread RPC round trip, a Hybrid-1 call), and prints the
 * per-op-kind critical-path breakdown — where each operation's wall
 * time went between software, the wire, the controller, and queueing.
 *
 *     remora_prof [--iters N] [--probe] [--json] [--trace FILE]
 *
 * --json swaps the table for the analyzer's machine-readable dump;
 * --trace additionally writes the raw Chrome trace_event recording for
 * chrome://tracing / ui.perfetto.dev (the same DAG, arrows and all).
 * --probe swaps the mixed workload for the name-service probe shape:
 * each iteration reads four directory slots one scalar read() at a
 * time, then again as a single readv() batch, so the `read` and
 * `vector` rows attribute exactly where batching reclaims time.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mem/node.h"
#include "net/network.h"
#include "obs/critical_path.h"
#include "obs/trace.h"
#include "rmem/engine.h"
#include "rpc/hybrid1.h"
#include "rpc/transport.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/panic.h"

namespace remora {
namespace {

/** The sequential mixed workload; one iteration per op kind per round. */
sim::Task<void>
workload(rmem::RmemEngine *client, rmem::ImportedSegment server,
         rmem::SegmentId scratch, rpc::RpcTransport *rpc,
         rpc::Hybrid1Client *hybrid, int iters)
{
    for (int i = 0; i < iters; ++i) {
        std::vector<uint8_t> data(256, static_cast<uint8_t>(i));
        auto ws = co_await client->write(server, 0, data);
        REMORA_ASSERT(ws.ok());

        rmem::ReadOutcome ro =
            co_await client->read(server, 0, scratch, 0, 256);
        REMORA_ASSERT(ro.status.ok());

        rmem::CasOutcome co = co_await client->cas(
            server, 512, static_cast<uint32_t>(i),
            static_cast<uint32_t>(i + 1), scratch, 256);
        REMORA_ASSERT(co.status.ok());

        auto rr = co_await rpc->call(1, 7, std::vector<uint8_t>(64, 0xab));
        REMORA_ASSERT(rr.ok());

        auto hr = co_await hybrid->call(std::vector<uint8_t>(64, 0xcd));
        REMORA_ASSERT(hr.ok());
    }
}

/**
 * The clerk-probe shape: four 64-byte directory slots fetched first as
 * four awaited scalar reads (one trap, frame, response, and interrupt
 * each), then as one readv() batch (all four in a request/response
 * pair). The analyzer's `read` row is the scalar side, `vector` the
 * batched side.
 */
sim::Task<void>
probeWorkload(rmem::RmemEngine *client, rmem::ImportedSegment server,
              rmem::SegmentId scratch, int iters)
{
    constexpr uint32_t kSlots = 4;
    constexpr uint32_t kSlotBytes = 64;
    for (int i = 0; i < iters; ++i) {
        for (uint32_t s = 0; s < kSlots; ++s) {
            // NOLINTNEXTLINE(remora-scalar-op-loop): the scalar
            // baseline this profile exists to attribute.
            auto ro = co_await client->read(server, s * kSlotBytes, scratch,
                                            s * kSlotBytes, kSlotBytes);
            REMORA_ASSERT(ro.status.ok());
        }
        std::vector<rmem::BatchBuilder::Read> ops;
        for (uint32_t s = 0; s < kSlots; ++s) {
            ops.push_back({server, s * kSlotBytes, scratch,
                           s * kSlotBytes, kSlotBytes, false});
        }
        // A wire-cost profile: the sub-op payloads are deliberately unused.
        // NOLINTNEXTLINE(remora-unchecked-vector-status)
        auto vo = co_await client->readv(std::move(ops));
        REMORA_ASSERT(vo.status.ok());
    }
}

int
run(int iters, bool probe, bool json, const char *tracePath)
{
    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});
    mem::Node server(sim, 1, "server");
    mem::Node client(sim, 2, "client");
    rmem::RmemEngine serverEng(server);
    rmem::RmemEngine clientEng(client);
    network.addHost(1, server.nic());
    network.addHost(2, client.nic());
    network.wireDirect();

    // Target segment on the server, scratch (read/cas landing) on the
    // client.
    mem::Process &sproc = server.spawnProcess("target");
    mem::Vaddr sbase = sproc.space().allocRegion(4096);
    auto exported = serverEng.exportSegment(sproc, sbase, 4096,
                                            rmem::Rights::kAll,
                                            rmem::NotifyPolicy::kNever,
                                            "prof.target");
    REMORA_ASSERT(exported.ok());
    mem::Process &cproc = client.spawnProcess("driver");
    mem::Vaddr cbase = cproc.space().allocRegion(4096);
    auto scratch = clientEng.exportSegment(cproc, cbase, 4096,
                                           rmem::Rights::kAll,
                                           rmem::NotifyPolicy::kNever,
                                           "prof.scratch");
    REMORA_ASSERT(scratch.ok());

    // Kernel-thread RPC echo on the server.
    rpc::RpcTransport serverRpc(serverEng.wire());
    rpc::RpcTransport clientRpc(clientEng.wire());
    serverRpc.registerProc(
        7, [](net::NodeId,
              std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            co_return args;
        });

    // Hybrid-1 echo on the server.
    rpc::Hybrid1Server hyServer(serverEng, sproc);
    hyServer.setHandler(
        [](net::NodeId,
           std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            co_return args;
        });
    hyServer.start();
    rpc::Hybrid1Client hyClient(clientEng, cproc,
                                hyServer.requestSegmentHandle(),
                                hyServer.allocSlot());

    auto &rec = obs::TraceRecorder::instance();
    rec.enable(sim);

    auto task = probe ? probeWorkload(&clientEng, exported.value(),
                                      scratch.value().descriptor, iters)
                      : workload(&clientEng, exported.value(),
                                 scratch.value().descriptor, &clientRpc,
                                 &hyClient, iters);
    sim.run();
    REMORA_ASSERT(task.done());
    rec.disable();

    obs::CriticalPathAnalyzer analyzer;
    auto paths = analyzer.analyze(rec.events());
    if (json) {
        std::fputs(obs::CriticalPathAnalyzer::toJson(paths).c_str(), stdout);
        std::fputc('\n', stdout);
    } else {
        std::printf("critical-path breakdown, %d iteration%s, mean us/op:\n",
                    iters, iters == 1 ? "" : "s");
        std::fputs(obs::CriticalPathAnalyzer::renderText(paths).c_str(),
                   stdout);
    }
    if (tracePath != nullptr) {
        if (!rec.writeChromeJson(tracePath)) {
            std::fprintf(stderr, "remora_prof: cannot write %s\n", tracePath);
            return 1;
        }
        std::fprintf(stderr, "trace written to %s (%zu events)\n", tracePath,
                     rec.eventCount());
    }
    return 0;
}

} // namespace
} // namespace remora

int
main(int argc, char **argv)
{
    int iters = 8;
    bool probe = false;
    bool json = false;
    const char *tracePath = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--probe") == 0) {
            probe = true;
        } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
            iters = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            tracePath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: remora_prof [--iters N] [--probe] [--json] "
                         "[--trace FILE]\n");
            return 2;
        }
    }
    return remora::run(iters, probe, json, tracePath);
}
