/**
 * @file
 * race_probe: one seeded, race-clean cluster workload under the armed
 * happens-before detector, for scripts/check.sh --race.
 *
 * Runs a three-node workload exercising each ordering primitive the
 * detector models — name-service publish/import (notification and CT
 * sequence-word edges), a CAS-guarded spin-lock counter (sync-word and
 * CAS-pair edges), and hybrid1 RPC round trips (request notification +
 * reply sequence word) — under schedule perturbation, then prints one
 * machine-parsable line:
 *
 *     seed=<N> digest=0x<16 hex> races=<M> checked=<K>
 *
 * The exit status is the race count clamped to 1, so a detector
 * regression (a lost happens-before edge surfaces as a false positive
 * here) fails the gate directly. The digest lets the driver confirm
 * that each seed really ran a distinct schedule and that reruns of the
 * same seed replay bit-identically.
 */
#include <cstdio>
#include <cstdlib>

#include "mem/node.h"
#include "names/clerk.h"
#include "net/network.h"
#include "rmem/engine.h"
#include "rmem/race_detector.h"
#include "rmem/sync.h"
#include "rpc/hybrid1.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/bytes.h"
#include "util/panic.h"

namespace remora {
namespace {

/** Locked read-modify-write increments of a shared counter. */
sim::Task<void>
counterWorker(rmem::RmemEngine *eng, rmem::SpinLock *lock,
              rmem::ImportedSegment page, rmem::SegmentId scratch,
              int iters)
{
    for (int k = 0; k < iters; ++k) {
        auto s = co_await lock->acquire();
        REMORA_ASSERT(s.ok());
        rmem::ReadOutcome cur = co_await eng->read(page, 64, scratch, 16, 4);
        REMORA_ASSERT(cur.status.ok());
        uint32_t v = util::ByteReader(cur.data).getU32();
        util::ByteWriter w(4);
        w.putU32(v + 1);
        auto ws = co_await eng->write(
            page, 64,
            std::vector<uint8_t>(w.bytes().begin(), w.bytes().end()));
        REMORA_ASSERT(ws.ok());
        auto r = co_await lock->release();
        REMORA_ASSERT(r.ok());
    }
}

/** Import the named segment and stream writes at it (sole writer). */
sim::Task<void>
namesWorker(names::NameClerk *clerk, rmem::RmemEngine *eng)
{
    auto imported = co_await clerk->import("probe.seg", 1);
    REMORA_ASSERT(imported.ok());
    for (int i = 0; i < 6; ++i) {
        std::vector<uint8_t> data(96, static_cast<uint8_t>(0x40 + i));
        auto ws = co_await eng->write(imported.value(), 128 * i, data);
        REMORA_ASSERT(ws.ok());
    }
}

/** Hybrid1 echo round trips. */
sim::Task<void>
rpcWorker(rpc::Hybrid1Client *client)
{
    for (uint8_t i = 0; i < 4; ++i) {
        std::vector<uint8_t> args{i, 2, 3};
        auto reply = co_await client->call(args);
        REMORA_ASSERT(reply.ok());
        REMORA_ASSERT(reply.value()[0] == i);
    }
}

int
run(uint64_t seed)
{
    // Arm before any segment is exported so every export registers.
    auto &det = rmem::RaceDetector::instance();
    det.arm({}); // non-fatal: count, report, and exit nonzero

    sim::Simulator sim;
    sim.setPerturbation(seed);
    net::Network network(sim, net::LinkParams{});
    std::vector<std::unique_ptr<mem::Node>> nodes;
    std::vector<std::unique_ptr<rmem::RmemEngine>> engines;
    for (uint32_t i = 1; i <= 3; ++i) {
        nodes.push_back(std::make_unique<mem::Node>(
            sim, i, "node" + std::to_string(i)));
        engines.push_back(std::make_unique<rmem::RmemEngine>(*nodes.back()));
        network.addHost(i, nodes.back()->nic());
    }
    network.wireSwitched();

    // Name service on nodes 1 and 2; node 1 publishes, node 2 imports.
    names::NameClerk names1(*engines[0]);
    names::NameClerk names2(*engines[1]);
    names1.addPeer(2);
    names2.addPeer(1);
    mem::Process &pub = nodes[0]->spawnProcess("publisher");
    mem::Vaddr pubBase = pub.space().allocRegion(4096);
    auto exp = names1.exportByName(&pub, pubBase, 4096, rmem::Rights::kAll,
                                   rmem::NotifyPolicy::kNever, "probe.seg");

    // Spin-lock counter page on node 1; nodes 2 and 3 contend.
    mem::Process &home = nodes[0]->spawnProcess("home");
    mem::Vaddr pageBase = home.space().allocRegion(4096);
    auto page = engines[0]->exportSegment(home, pageBase, 4096,
                                          rmem::Rights::kAll,
                                          rmem::NotifyPolicy::kNever,
                                          "probe.page");
    REMORA_ASSERT(page.ok());
    struct Contender
    {
        std::unique_ptr<rmem::SpinLock> lock;
        rmem::SegmentId scratch = 0;
        sim::Task<void> task{};
    };
    std::vector<Contender> contenders(2);
    for (size_t i = 0; i < 2; ++i) {
        auto &eng = *engines[i + 1];
        mem::Process &proc = nodes[i + 1]->spawnProcess("contender");
        mem::Vaddr lbase = proc.space().allocRegion(4096);
        auto l = eng.exportSegment(proc, lbase, 4096, rmem::Rights::kAll,
                                   rmem::NotifyPolicy::kNever,
                                   "probe.scratch");
        REMORA_ASSERT(l.ok());
        contenders[i].scratch = l.value().descriptor;
        contenders[i].lock = std::make_unique<rmem::SpinLock>(
            eng, page.value(), 0, contenders[i].scratch, 0,
            static_cast<uint32_t>(0x200 + i));
    }

    // Hybrid1 RPC: server on node 1, client on node 3.
    mem::Process &serverProc = nodes[0]->spawnProcess("rpc-server");
    rpc::Hybrid1Server server(*engines[0], serverProc);
    server.setHandler(
        [](net::NodeId,
           std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            co_return args;
        });
    server.start();
    mem::Process &clientProc = nodes[2]->spawnProcess("rpc-client");
    rpc::Hybrid1Client client(*engines[2], clientProc,
                              server.requestSegmentHandle(),
                              server.allocSlot());

    // Drive everything to completion on one event queue.
    auto names = namesWorker(&names2, &*engines[1]);
    for (size_t i = 0; i < 2; ++i) {
        contenders[i].task =
            counterWorker(&*engines[i + 1], contenders[i].lock.get(),
                          page.value(), contenders[i].scratch, 4);
    }
    auto rpcs = rpcWorker(&client);
    sim.run();
    REMORA_ASSERT(exp.done() && exp.result().ok());
    REMORA_ASSERT(names.done());
    REMORA_ASSERT(contenders[0].task.done() && contenders[1].task.done());
    REMORA_ASSERT(rpcs.done());

    std::printf("seed=%llu digest=0x%016llx races=%llu checked=%llu\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(sim.digest().value()),
                static_cast<unsigned long long>(det.raceCount()),
                static_cast<unsigned long long>(det.accessesChecked()));
    for (const auto &r : det.reports()) {
        std::fprintf(stderr, "%s\n", r.format().c_str());
    }
    return det.raceCount() == 0 ? 0 : 1;
}

} // namespace
} // namespace remora

int
main(int argc, char **argv)
{
    uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 0ull;
    return remora::run(seed);
}
